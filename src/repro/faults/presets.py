"""Canonical fault scenarios used by experiments, examples and the CLI.

Three named fault modes cover the evaluation grid of the fault-tolerance
experiment: ``sensor`` (glitchy coretemp path), ``actuation`` (flaky
cpufreq/affinity interface) and ``both``.  ``none`` maps to no fault
model at all, so fault-free runs stay bit-identical to a simulation
without the robustness layer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import FaultConfig, SupervisorConfig

#: Names accepted by :func:`fault_config_for`.
FAULT_MODES: Tuple[str, ...] = ("none", "sensor", "actuation", "both")


def sensor_fault_config() -> FaultConfig:
    """A glitchy sensor path: dropouts, spikes, latching, miscalibration."""
    return FaultConfig(
        enabled=True,
        dropout_prob=0.05,
        spike_prob=0.03,
        spike_magnitude_c=35.0,
        stuck_prob=0.01,
        stuck_duration_s=20.0,
        offset_c=(1.5, -1.0, 0.5, 0.0),
    )


def actuation_fault_config() -> FaultConfig:
    """A flaky actuation path: rejected and silently ignored transitions."""
    return FaultConfig(
        enabled=True,
        governor_fail_prob=0.25,
        governor_noop_prob=0.15,
        mapping_fail_prob=0.25,
        mapping_noop_prob=0.15,
    )


def combined_fault_config() -> FaultConfig:
    """Sensor and actuation faults together."""
    sensor = sensor_fault_config()
    actuation = actuation_fault_config()
    return FaultConfig(
        enabled=True,
        dropout_prob=sensor.dropout_prob,
        spike_prob=sensor.spike_prob,
        spike_magnitude_c=sensor.spike_magnitude_c,
        stuck_prob=sensor.stuck_prob,
        stuck_duration_s=sensor.stuck_duration_s,
        offset_c=sensor.offset_c,
        governor_fail_prob=actuation.governor_fail_prob,
        governor_noop_prob=actuation.governor_noop_prob,
        mapping_fail_prob=actuation.mapping_fail_prob,
        mapping_noop_prob=actuation.mapping_noop_prob,
    )


def fault_config_for(mode: str) -> Optional[FaultConfig]:
    """The :class:`FaultConfig` of a named fault mode (None for ``none``).

    Raises
    ------
    ValueError
        For an unknown mode name.
    """
    if mode == "none":
        return None
    if mode == "sensor":
        return sensor_fault_config()
    if mode == "actuation":
        return actuation_fault_config()
    if mode == "both":
        return combined_fault_config()
    raise ValueError(f"unknown fault mode {mode!r}; expected one of {FAULT_MODES}")


def default_supervisor_config() -> SupervisorConfig:
    """The supervision policy the fault-tolerance experiment enables."""
    return SupervisorConfig(enabled=True)
