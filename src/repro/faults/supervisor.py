"""Graceful degradation: sensor sanitisation and supervised actuation.

Two cooperating components harden the observe/decide/actuate loop:

* :class:`SensorSupervisor` — sanity-checks every reading vector before
  it reaches any controller: non-finite and out-of-range values, rate-
  of-change violations (spikes) and stuck-at sensors are detected and
  replaced by the cross-core median of the healthy sensors, falling
  back to the last accepted value and finally to the fail-hot sensor
  ceiling.  The output is guaranteed finite and inside the sensor's
  ``[min_c, max_c]`` range, so the Q-learning update never consumes a
  NaN or implausible observation.

* :class:`ActuationSupervisor` — mediates ``set_governor`` /
  ``set_mapping``: every request is verified against the platform state
  (catching both rejected transitions and silent no-ops) and retried
  with bounded exponential backoff.  When a sanitised reading crosses
  the critical threshold, or a requested actuation is still not in
  force after the fault deadline, it engages a thermal-emergency safe
  state that clamps the chip to the minimum operating point — the
  software analogue of PROCHOT hardware throttling, which is why the
  clamp itself bypasses the (possibly faulty) cpufreq software path.

Both keep per-event counters that experiments read back through
``SimulationResult.supervisor_stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from repro.config import SensorConfig, SupervisorConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation
    from repro.sched.affinity import AffinityMapping
    from repro.soc.simulator import Simulation

#: Sentinel distinguishing "no mapping requested yet" from a requested
#: ``None`` mapping (the OS default is itself a valid request).
_UNSET = object()


class SensorSupervisor:
    """Reading sanitisation in front of every controller.

    Parameters
    ----------
    config:
        Supervision thresholds.
    sensor:
        The platform's sensor model, providing the plausible
        ``[min_c, max_c]`` range the output is guaranteed to stay in.
    num_cores:
        Number of per-core sensors.
    """

    def __init__(
        self, config: SupervisorConfig, sensor: SensorConfig, num_cores: int
    ) -> None:
        self.config = config
        self.sensor = sensor
        self.num_cores = num_cores
        #: Optional observation-only hook (set by the simulation).  It
        #: deliberately survives :meth:`reset` — per-run filter state is
        #: forgotten, the attached sinks are not.
        self.obs: "Optional[Instrumentation]" = None
        self.reset()

    def reset(self) -> None:
        """Forget all per-run filter state."""
        self._last_good: Optional[np.ndarray] = None
        self._last_time: Optional[float] = None
        self._stuck_ref = np.full(self.num_cores, np.nan)
        self._stuck_run = np.zeros(self.num_cores, dtype=int)
        self.last_max_c: Optional[float] = None
        self.reads = 0
        self.dropouts_blocked = 0
        self.range_blocked = 0
        self.rate_blocked = 0
        self.stuck_blocked = 0
        self.median_fallbacks = 0
        self.hold_fallbacks = 0
        self.failsafe_fallbacks = 0

    def filter(self, now_s: float, readings: Sequence[float]) -> np.ndarray:
        """Sanitise one reading vector.

        Parameters
        ----------
        now_s:
            Simulation time of the read (drives the rate-of-change
            check).
        readings:
            Raw per-core readings, possibly faulted (NaN, spikes,
            stuck values, offsets).

        Returns
        -------
        numpy.ndarray
            Finite readings clipped to the sensor's ``[min_c, max_c]``
            range, with every rejected value replaced by the healthy
            cross-core median, the last accepted value, or — if neither
            exists — the fail-hot sensor ceiling.
        """
        raw = np.asarray(readings, dtype=float)
        if raw.shape != (self.num_cores,):
            raise ValueError(f"expected {self.num_cores} readings")
        self.reads += 1

        finite = np.isfinite(raw)
        self.dropouts_blocked += int(np.count_nonzero(~finite))
        with np.errstate(invalid="ignore"):
            in_range = finite & (raw >= self.sensor.min_c) & (raw <= self.sensor.max_c)
        self.range_blocked += int(np.count_nonzero(finite & ~in_range))
        ok = in_range

        if self._last_good is not None and self._last_time is not None:
            dt = max(now_s - self._last_time, 1e-9)
            with np.errstate(invalid="ignore"):
                too_fast = ok & (
                    np.abs(raw - self._last_good) / dt > self.config.max_rate_c_per_s
                )
            self.rate_blocked += int(np.count_nonzero(too_fast))
            ok = ok & ~too_fast

        # Stuck-at detection: a run of bit-identical raw values longer
        # than any plausible steady-state plateau, confirmed by the
        # healthy cores' median having moved away.  The confirmation
        # step is what keeps a genuinely steady chip (whose quantised
        # readings also repeat) from being flagged.
        with np.errstate(invalid="ignore"):
            same = finite & (raw == self._stuck_ref)
        self._stuck_run = np.where(same, self._stuck_run + 1, 1)
        self._stuck_ref = np.where(finite, raw, self._stuck_ref)
        suspects = ok & (self._stuck_run >= self.config.stuck_window)
        if suspects.any():
            healthy = ok & ~suspects
            if healthy.any():
                median = float(np.median(raw[healthy]))
                confirmed = suspects & (
                    np.abs(raw - median) > self.config.stuck_delta_c
                )
                self.stuck_blocked += int(np.count_nonzero(confirmed))
                ok = ok & ~confirmed

        out = raw.copy()
        bad = ~ok
        if bad.any():
            bad_count = int(np.count_nonzero(bad))
            if ok.any():
                out[bad] = float(np.median(raw[ok]))
                self.median_fallbacks += bad_count
                intervention = "sensor_median_fallback"
            elif self._last_good is not None:
                out[bad] = self._last_good[bad]
                self.hold_fallbacks += bad_count
                intervention = "sensor_hold_fallback"
            else:
                # No reference at all: assume the worst (fail hot), so
                # the emergency logic errs towards protecting the chip.
                out[bad] = self.sensor.max_c
                self.failsafe_fallbacks += bad_count
                intervention = "sensor_failsafe_fallback"
            if self.obs is not None:
                self.obs.emit(
                    "supervisor",
                    now_s,
                    intervention=intervention,
                    count=bad_count,
                )
        out = np.clip(out, self.sensor.min_c, self.sensor.max_c)

        self._last_good = out.copy()
        self._last_time = now_s
        self.last_max_c = float(out.max())
        return out

    def stats(self) -> Dict[str, float]:
        """Counters for the simulation result."""
        return {
            "sensor_reads": float(self.reads),
            "sensor_dropouts_blocked": float(self.dropouts_blocked),
            "sensor_range_blocked": float(self.range_blocked),
            "sensor_rate_blocked": float(self.rate_blocked),
            "sensor_stuck_blocked": float(self.stuck_blocked),
            "sensor_median_fallbacks": float(self.median_fallbacks),
            "sensor_hold_fallbacks": float(self.hold_fallbacks),
            "sensor_failsafe_fallbacks": float(self.failsafe_fallbacks),
        }


@dataclass
class _PendingActuation:
    """A requested transition that is not yet in force."""

    first_requested_s: float
    #: Actuation attempts performed so far (the initial call included).
    attempts: int
    next_retry_s: float
    abandoned: bool = False


class ActuationSupervisor:
    """Verified, retried actuation with a thermal-emergency safe state.

    Parameters
    ----------
    config:
        Retry/backoff bounds and emergency thresholds.
    sensors:
        The sensor supervisor whose sanitised readings drive the
        thermal-emergency decisions.
    """

    def __init__(self, config: SupervisorConfig, sensors: SensorSupervisor) -> None:
        self.config = config
        self.sensors = sensors
        self._desired_governor: Optional[tuple] = None
        self._desired_mapping: object = _UNSET
        self._pending: Dict[str, _PendingActuation] = {}
        self.emergency_active = False
        self._engaged_at_s: Optional[float] = None
        self.requests = 0
        self.deferred = 0
        self.failures_detected = 0
        self.retries = 0
        self.abandoned = 0
        self.emergencies = 0
        self._emergency_time_s = 0.0

    # ------------------------------------------------------------------
    # Requests (called by Simulation.set_governor / set_mapping)
    # ------------------------------------------------------------------

    def request_governor(
        self, sim: "Simulation", name: str, userspace_frequency_hz: Optional[float]
    ) -> None:
        """Record and attempt a supervised governor transition."""
        self.requests += 1
        self._desired_governor = (name, userspace_frequency_hz)
        if self.emergency_active:
            # The clamp owns the hardware; apply once it releases.
            self._pending.pop("governor", None)
            self.deferred += 1
            return
        self._begin("governor", sim)

    def request_mapping(
        self, sim: "Simulation", mapping: "Optional[AffinityMapping]"
    ) -> None:
        """Record and attempt a supervised affinity change."""
        self.requests += 1
        self._desired_mapping = mapping
        if self.emergency_active:
            self._pending.pop("mapping", None)
            self.deferred += 1
            return
        self._begin("mapping", sim)

    # ------------------------------------------------------------------
    # Attempt / verify / retry machinery
    # ------------------------------------------------------------------

    def _attempt_ok(self, sim: "Simulation", kind: str) -> bool:
        """One actuation attempt, verified against the platform state.

        Verification by reading the state back is what catches *silent*
        no-ops, which report success but change nothing.
        """
        if kind == "governor":
            name, hz = self._desired_governor
            accepted = sim._actuate_governor(name, hz)
            return accepted and sim.governor_in_force(name, hz)
        accepted = sim._actuate_mapping(self._desired_mapping)
        return accepted and sim.mapping_in_force(self._desired_mapping)

    def _begin(self, kind: str, sim: "Simulation") -> None:
        self._pending.pop(kind, None)
        if self._attempt_ok(sim, kind):
            return
        self.failures_detected += 1
        self._emit(sim, "actuation_failure_detected")
        pending = _PendingActuation(
            first_requested_s=sim.now,
            attempts=1,
            next_retry_s=sim.now + self.config.retry_backoff_s,
        )
        if pending.attempts >= 1 + self.config.max_retries:
            pending.abandoned = True
            self.abandoned += 1
            self._emit(sim, "actuation_abandoned")
        self._pending[kind] = pending

    def _emit(self, sim: "Simulation", intervention: str) -> None:
        """Record one supervisor intervention through the sim's hook."""
        if sim.obs is not None:
            sim.obs.emit(
                "supervisor", sim.now, intervention=intervention, count=1
            )

    def on_tick(self, sim: "Simulation") -> None:
        """Advance retries and the emergency state machine by one tick."""
        now = sim.now
        last_max = self.sensors.last_max_c

        if self.emergency_active:
            if last_max is not None and last_max <= self.config.emergency_release_c:
                self._release(sim)
            return

        if last_max is not None and last_max >= self.config.critical_temp_c:
            self._engage(sim)
            return
        for pending in self._pending.values():
            if now - pending.first_requested_s >= self.config.fault_deadline_s:
                self._engage(sim)
                return

        for kind in list(self._pending):
            pending = self._pending[kind]
            if pending.abandoned or now + 1e-9 < pending.next_retry_s:
                continue
            if self._attempt_ok(sim, kind):
                del self._pending[kind]
                continue
            self.retries += 1
            self._emit(sim, "actuation_retry")
            pending.attempts += 1
            if pending.attempts >= 1 + self.config.max_retries:
                pending.abandoned = True
                self.abandoned += 1
                self._emit(sim, "actuation_abandoned")
            else:
                backoff = self.config.retry_backoff_s * 2 ** (pending.attempts - 1)
                pending.next_retry_s = now + backoff

    # ------------------------------------------------------------------
    # Thermal-emergency safe state
    # ------------------------------------------------------------------

    def _engage(self, sim: "Simulation") -> None:
        self.emergency_active = True
        self.emergencies += 1
        self._engaged_at_s = sim.now
        self._pending.clear()
        sim._engage_thermal_emergency()
        self._emit(sim, "emergency_engage")

    def _release(self, sim: "Simulation") -> None:
        self.emergency_active = False
        if self._engaged_at_s is not None:
            self._emergency_time_s += sim.now - self._engaged_at_s
            self._engaged_at_s = None
        sim._release_thermal_emergency()
        self._emit(sim, "emergency_release")
        # Re-establish whatever the controller last asked for, through
        # the normal (supervised, possibly faulty) path.
        if self._desired_governor is not None:
            self._begin("governor", sim)
        if self._desired_mapping is not _UNSET:
            self._begin("mapping", sim)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self, now_s: float) -> Dict[str, float]:
        """Counters for the simulation result (closing any open clamp)."""
        emergency_time = self._emergency_time_s
        if self.emergency_active and self._engaged_at_s is not None:
            emergency_time += now_s - self._engaged_at_s
        return {
            "actuation_requests": float(self.requests),
            "actuation_deferred": float(self.deferred),
            "actuation_failures_detected": float(self.failures_detected),
            "actuation_retries": float(self.retries),
            "actuation_abandoned": float(self.abandoned),
            "emergencies": float(self.emergencies),
            "emergency_active": 1.0 if self.emergency_active else 0.0,
            "emergency_time_s": emergency_time,
        }
