"""Fault injection and graceful degradation for the DTM loop.

The paper's controllers run on a physical substrate — ``coretemp``
sensors, the ``cpufreq`` interface, affinity syscalls — every part of
which can fail.  This package adds (1) a seeded, deterministic
:class:`FaultInjector` that perturbs the sensor and actuation paths of
:class:`repro.soc.simulator.Simulation`, and (2) a supervision layer
(:class:`SensorSupervisor`, :class:`ActuationSupervisor`) that keeps the
observe/decide/actuate loop well-defined under those faults.  Both are
opt-in: without a :class:`repro.config.FaultConfig` /
:class:`repro.config.SupervisorConfig`, simulations are bit-identical
to the pre-existing fault-free engine.
"""

from repro.config import FaultConfig, SupervisorConfig
from repro.faults.injector import (
    OUTCOME_FAIL,
    OUTCOME_NOOP,
    OUTCOME_OK,
    FaultInjectionStats,
    FaultInjector,
)
from repro.faults.presets import (
    FAULT_MODES,
    actuation_fault_config,
    combined_fault_config,
    default_supervisor_config,
    fault_config_for,
    sensor_fault_config,
)
from repro.faults.supervisor import ActuationSupervisor, SensorSupervisor

__all__ = [
    "FAULT_MODES",
    "ActuationSupervisor",
    "FaultConfig",
    "FaultInjectionStats",
    "FaultInjector",
    "OUTCOME_FAIL",
    "OUTCOME_NOOP",
    "OUTCOME_OK",
    "SensorSupervisor",
    "SupervisorConfig",
    "actuation_fault_config",
    "combined_fault_config",
    "default_supervisor_config",
    "fault_config_for",
    "sensor_fault_config",
]
