"""Central configuration dataclasses for the reproduction.

Every tunable of the platform simulator, the reliability models and the
learning agent lives here, so experiments can be described as small diffs
against :func:`default_platform_config` / :func:`default_agent_config`.

The default numbers are calibrated so that the simulated quad-core chip
behaves like the Intel desktop part used in the paper:

* an idle core sits a few degrees above the 30 degC ambient;
* a fully loaded chip (4 cores at 3.4 GHz, activity ~1) reaches ~70 degC,
  matching the hottest row of Table 2 (tachyon, set 1, Linux);
* core-level thermal time constants are a couple of seconds, so the
  seconds-scale compute/sync phase alternation of the multimedia workloads
  produces sensor-visible thermal cycling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.units import ghz

# ---------------------------------------------------------------------------
# Platform: operating points, power, thermal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatingPoint:
    """A voltage/frequency pair (an OPP in cpufreq terminology).

    Attributes
    ----------
    frequency_hz:
        Core clock frequency in hertz.
    voltage_v:
        Supply voltage in volts at that frequency.
    """

    frequency_hz: float
    voltage_v: float


def default_opp_table() -> Tuple[OperatingPoint, ...]:
    """The default DVFS ladder: 1.6 GHz ... 3.4 GHz, scaled voltage.

    The three ``userspace`` frequencies exposed to the learning agent
    (Section 5.1 of the paper selects three levels) are 2.0, 2.4 and
    3.4 GHz; Table 3 of the paper reports the 2.4 GHz and 3.4 GHz columns.
    """
    return (
        OperatingPoint(ghz(1.6), 0.800),
        OperatingPoint(ghz(2.0), 0.875),
        OperatingPoint(ghz(2.4), 0.950),
        OperatingPoint(ghz(2.8), 1.000),
        OperatingPoint(ghz(3.2), 1.0625),
        OperatingPoint(ghz(3.4), 1.100),
    )


@dataclass(frozen=True)
class PowerConfig:
    """Parameters of the per-core power model.

    Dynamic power is ``activity * c_eff * V^2 * f``; static (leakage)
    power is ``k_leak * V * exp(t_leak * T_celsius)``, the standard
    exponential temperature dependence used by the leakage models the
    paper cites (Ukhov et al., ref. [17]).
    """

    #: Effective switched capacitance per core (farads).
    c_eff: float = 2.00e-9
    #: Leakage scale factor (watts per volt at 0 degC).
    k_leak: float = 0.316
    #: Exponential leakage temperature coefficient (per degC).
    t_leak: float = 0.020
    #: Power drawn by the uncore/memory system per unit of core activity.
    uncore_power_per_active_core: float = 0.8
    #: Constant platform baseline power attributed to the package (watts).
    idle_package_power: float = 1.2


@dataclass(frozen=True)
class ThermalConfig:
    """Parameters of the lumped RC thermal network.

    The network has one node per core plus a single heat-spreader node
    that couples every core to ambient.  Conductances are in W/K and heat
    capacities in J/K; see ``repro.thermal.rc_model`` for the equations.
    """

    #: Ambient temperature in degrees Celsius.
    ambient_c: float = 30.0
    #: Heat capacity of each core node (J/K) -> tau of a second or two.
    core_capacitance: float = 0.8
    #: Heat capacity of the spreader node (J/K) -> slow package drift.
    spreader_capacitance: float = 55.0
    #: Conductance from each core to the spreader (W/K).
    core_to_spreader: float = 0.50
    #: Conductance between physically adjacent cores (W/K).
    core_to_core: float = 0.20
    #: Conductance from the spreader to ambient (W/K).
    spreader_to_ambient: float = 1.05
    #: Std-dev of the Ornstein-Uhlenbeck ambient/airflow fluctuation
    #: (degC); 0 disables it.  A physical testbed's effective ambient
    #: wanders with airflow and room temperature — this is the slow
    #: variance behind the high short-interval autocorrelation of the
    #: paper's Figure 6.
    ambient_drift_sigma_c: float = 0.0
    #: Correlation time of the ambient fluctuation (seconds).
    ambient_drift_tau_s: float = 8.0


@dataclass(frozen=True)
class SensorConfig:
    """On-board digital thermal sensor model.

    Intel DTS readings are quantised to 1 degC; we add a small Gaussian
    noise before quantisation so repeated samples of a steady core are
    realistic for the autocorrelation study of Figure 6.
    """

    #: Quantisation step in degrees Celsius (0 disables quantisation).
    quantisation_c: float = 1.0
    #: Standard deviation of additive Gaussian noise (degC).
    noise_std_c: float = 0.25
    #: Saturation limits of the sensor (degC).
    min_c: float = 0.0
    max_c: float = 125.0
    #: Time constant of the sensor reading path's low-pass filtering
    #: (seconds); 0 disables it.  Physical DTS readings respond with the
    #: sensor diode's own thermal mass plus firmware averaging — the
    #: reason consecutive 1 s samples of a real chip are so similar
    #: (Figure 6's autocorrelation panel).
    ema_tau_s: float = 0.0


@dataclass(frozen=True)
class PlatformConfig:
    """Everything that defines the simulated quad-core platform."""

    num_cores: int = 4
    #: Simulation tick in seconds.
    dt: float = 0.1
    opp_table: Tuple[OperatingPoint, ...] = field(default_factory=default_opp_table)
    power: PowerConfig = field(default_factory=PowerConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    sensor: SensorConfig = field(default_factory=SensorConfig)
    #: Adjacency of cores on the die as index pairs (2x2 grid by default).
    core_adjacency: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 3), (2, 3))

    def min_frequency(self) -> float:
        """Lowest frequency of the OPP table in hertz."""
        return min(p.frequency_hz for p in self.opp_table)

    def max_frequency(self) -> float:
        """Highest frequency of the OPP table in hertz."""
        return max(p.frequency_hz for p in self.opp_table)

    def frequencies(self) -> List[float]:
        """All OPP frequencies in ascending order (hertz)."""
        return sorted(p.frequency_hz for p in self.opp_table)

    def voltage_for(self, frequency_hz: float) -> float:
        """Voltage of the OPP whose frequency matches ``frequency_hz``.

        Raises
        ------
        KeyError
            If no operating point has that exact frequency.
        """
        for point in self.opp_table:
            if abs(point.frequency_hz - frequency_hz) < 1.0:
                return point.voltage_v
        raise KeyError(f"no operating point at {frequency_hz} Hz")


# ---------------------------------------------------------------------------
# Reliability
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityConfig:
    """Device parameters for the aging and thermal-cycling MTTF models.

    The constants follow the embedded-reliability literature that the
    paper cites (Chantem et al. [2], Ukhov et al. [17], Srinivasan et
    al. [15]) and are scaled, per the caption of Table 2, so that an
    unstressed (idle) core has an MTTF of exactly ``baseline_mttf_years``.
    """

    #: Reference temperature of an unstressed core (degC): aging rate 1.
    #: This is the steady-state temperature of an idle core on the default
    #: platform (ambient 30 degC plus idle leakage/package heat), so an
    #: idle run reports exactly the baseline MTTF.
    reference_temp_c: float = 34.0
    #: Activation energy of the aging (EM/NBTI) Arrhenius term (eV).
    aging_activation_energy_ev: float = 0.70
    #: Weibull slope of the lifetime distribution.
    weibull_beta: float = 2.0
    #: Coffin-Manson exponent ``b`` of Eq. 3.
    coffin_manson_exponent: float = 2.35
    #: Temperature amplitude below which deformation is elastic (K).
    elastic_threshold_k: float = 2.5
    #: Activation energy of the cycling term in Eq. 3 (eV).
    cycling_activation_energy_ev: float = 0.30
    #: MTTF of an unstressed core, the calibration anchor (years).
    baseline_mttf_years: float = 10.0
    #: Empirical Coffin-Manson scale ``ATC`` of Eq. 3.  ``None`` means
    #: auto-calibrate (see ``repro.reliability.mttf.calibrate_atc``) so
    #: that a reference profile cycling 10 K around 50 degC every 20 s
    #: yields a cycling MTTF of ``cycling_reference_mttf_years``, placing
    #: the Table 2 workloads inside the paper's 0.7-7.1 year band.
    cycling_scale_atc: "float | None" = None
    #: Target cycling MTTF of the calibration reference profile (years).
    cycling_reference_mttf_years: float = 1.5


# ---------------------------------------------------------------------------
# Learning agent (the paper's contribution)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentConfig:
    """Hyper-parameters of Algorithm 1.

    The defaults correspond to the choices the paper reports in
    Section 6.4: a 3 s temperature sampling interval, a decision epoch
    chosen from the Figure 7 trade-off (30 s), and state/action space
    sizes from the Figure 8 trade-off.
    """

    #: Temperature sampling interval in seconds (Figure 6 sweeps this).
    sampling_interval_s: float = 3.0
    #: Decision epoch in seconds (Figure 7 sweeps this).
    decision_epoch_s: float = 30.0
    #: Number of stress bins Ns (Section 5.1).
    num_stress_bins: int = 3
    #: Number of aging bins Na (Section 5.1).
    num_aging_bins: int = 3
    #: Number of actions exposed to the agent (Figure 8 sweeps this).
    num_actions: int = 8
    #: Discount rate gamma of Eq. 7.
    discount: float = 0.50
    #: Time constant (in epochs) of the exponential alpha decay.
    alpha_decay_epochs: float = 8.0
    #: Alpha below which the agent is considered in pure exploitation.
    alpha_exploit_threshold: float = 0.05
    #: Alpha restored on intra-application variation (Section 5.4).
    alpha_intra: float = 0.15
    #: Lower/upper thresholds on the stress moving-average deviation.
    stress_ma_lower: float = 0.15
    stress_ma_upper: float = 0.20
    #: Lower/upper thresholds on the aging moving-average deviation.
    aging_ma_lower: float = 0.15
    aging_ma_upper: float = 0.20
    #: Window (in epochs) of the stress/aging moving averages.
    ma_window: int = 3
    #: Relative importance pairs (a, b) of stress vs aging in the reward
    #: (Section 5.2): cycling-dominant epochs use the first pair, aging
    #: dominant epochs the second.
    weight_stress_dominant: Tuple[float, float] = (0.75, 0.25)
    weight_aging_dominant: Tuple[float, float] = (0.25, 0.75)
    #: Width (in normalised units) of the Gaussian learning weights K1/K2.
    gaussian_width: float = 0.35
    #: Centre of the Gaussian learning weights in normalised [0, 1].
    gaussian_centre: float = 0.45
    #: Scale of the performance term (Pc - P) in the reward.
    performance_weight: float = 2.0
    #: Random seed for action exploration.
    seed: int = 2014


@dataclass(frozen=True)
class GeQiuConfig:
    """Hyper-parameters of the Ge & Qiu (DAC 2011) baseline controller."""

    #: Sampling interval == decision interval (no decoupling).
    interval_s: float = 3.0
    #: Number of instantaneous-temperature bins in its state space.
    num_temp_bins: int = 8
    #: Temperature range covered by the bins (degC).
    temp_range_c: Tuple[float, float] = (30.0, 85.0)
    #: Temperature above which the reward turns into a penalty (the
    #: thermal constraint their manager keeps the chip under).
    temp_threshold_c: float = 55.0
    discount: float = 0.5
    alpha_decay_epochs: float = 40.0
    #: Weight of the over-threshold temperature penalty in its reward.
    temp_weight: float = 1.0
    #: Weight of the performance term in its reward.
    perf_weight: float = 0.6
    seed: int = 2011


def default_platform_config() -> PlatformConfig:
    """A fresh default platform configuration."""
    return PlatformConfig()


def default_reliability_config() -> ReliabilityConfig:
    """A fresh default reliability configuration."""
    return ReliabilityConfig()


def default_agent_config() -> AgentConfig:
    """A fresh default agent configuration."""
    return AgentConfig()
