"""Central configuration dataclasses for the reproduction.

Every tunable of the platform simulator, the reliability models and the
learning agent lives here, so experiments can be described as small diffs
against :func:`default_platform_config` / :func:`default_agent_config`.

The default numbers are calibrated so that the simulated quad-core chip
behaves like the Intel desktop part used in the paper:

* an idle core sits a few degrees above the 30 degC ambient;
* a fully loaded chip (4 cores at 3.4 GHz, activity ~1) reaches ~70 degC,
  matching the hottest row of Table 2 (tachyon, set 1, Linux);
* core-level thermal time constants are a couple of seconds, so the
  seconds-scale compute/sync phase alternation of the multimedia workloads
  produces sensor-visible thermal cycling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.units import ghz

# ---------------------------------------------------------------------------
# Validation helpers (every dataclass field below is covered by one of
# these in its __post_init__ — enforced statically by `repro lint`'s
# CFG001 rule)
# ---------------------------------------------------------------------------


def _check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is finite and strictly positive."""
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be finite and > 0, got {value}")


def _check_non_negative(name: str, value: float) -> None:
    """Raise unless ``value`` is finite and >= 0."""
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be finite and >= 0, got {value}")


def _check_finite(name: str, value: float) -> None:
    """Raise unless ``value`` is a finite number."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")


def _check_bool(name: str, value: bool) -> None:
    """Raise unless ``value`` is an actual bool (not a truthy stand-in)."""
    if not isinstance(value, bool):
        raise ValueError(f"{name} must be a bool, got {value!r}")


def _check_int_at_least(name: str, value: int, minimum: int) -> None:
    """Raise unless ``value`` is an int >= ``minimum``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an int, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")


def _check_seed(name: str, value: int) -> None:
    """Raise unless ``value`` is an int usable as an RNG seed."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an int seed, got {value!r}")


def _check_weight_pair(name: str, pair: Tuple[float, float]) -> None:
    """Raise unless ``pair`` is two finite non-negative weights."""
    if len(pair) != 2:
        raise ValueError(f"{name} must be a (stress, aging) pair, got {pair!r}")
    for weight in pair:
        _check_non_negative(name, weight)


# ---------------------------------------------------------------------------
# Platform: operating points, power, thermal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatingPoint:
    """A voltage/frequency pair (an OPP in cpufreq terminology).

    Attributes
    ----------
    frequency_hz:
        Core clock frequency in hertz.
    voltage_v:
        Supply voltage in volts at that frequency.
    """

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        _check_positive("frequency_hz", self.frequency_hz)
        _check_positive("voltage_v", self.voltage_v)


def default_opp_table() -> Tuple[OperatingPoint, ...]:
    """The default DVFS ladder: 1.6 GHz ... 3.4 GHz, scaled voltage.

    The three ``userspace`` frequencies exposed to the learning agent
    (Section 5.1 of the paper selects three levels) are 2.0, 2.4 and
    3.4 GHz; Table 3 of the paper reports the 2.4 GHz and 3.4 GHz columns.
    """
    return (
        OperatingPoint(ghz(1.6), 0.800),
        OperatingPoint(ghz(2.0), 0.875),
        OperatingPoint(ghz(2.4), 0.950),
        OperatingPoint(ghz(2.8), 1.000),
        OperatingPoint(ghz(3.2), 1.0625),
        OperatingPoint(ghz(3.4), 1.100),
    )


@dataclass(frozen=True)
class PowerConfig:
    """Parameters of the per-core power model.

    Dynamic power is ``activity * c_eff * V^2 * f``; static (leakage)
    power is ``k_leak * V * exp(t_leak * T_celsius)``, the standard
    exponential temperature dependence used by the leakage models the
    paper cites (Ukhov et al., ref. [17]).
    """

    #: Effective switched capacitance per core (farads).
    c_eff: float = 2.00e-9
    #: Leakage scale factor (watts per volt at 0 degC).
    k_leak: float = 0.316
    #: Exponential leakage temperature coefficient (per degC).
    t_leak: float = 0.020
    #: Power drawn by the uncore/memory system per unit of core activity.
    uncore_power_per_active_core: float = 0.8
    #: Constant platform baseline power attributed to the package (watts).
    idle_package_power: float = 1.2

    def __post_init__(self) -> None:
        _check_positive("c_eff", self.c_eff)
        for name in ("k_leak", "t_leak", "uncore_power_per_active_core",
                     "idle_package_power"):
            _check_non_negative(name, getattr(self, name))


@dataclass(frozen=True)
class ThermalConfig:
    """Parameters of the lumped RC thermal network.

    The network has one node per core plus a single heat-spreader node
    that couples every core to ambient.  Conductances are in W/K and heat
    capacities in J/K; see ``repro.thermal.rc_model`` for the equations.
    """

    #: Ambient temperature in degrees Celsius.
    ambient_c: float = 30.0
    #: Heat capacity of each core node (J/K) -> tau of a second or two.
    core_capacitance: float = 0.8
    #: Heat capacity of the spreader node (J/K) -> slow package drift.
    spreader_capacitance: float = 55.0
    #: Conductance from each core to the spreader (W/K).
    core_to_spreader: float = 0.50
    #: Conductance between physically adjacent cores (W/K).
    core_to_core: float = 0.20
    #: Conductance from the spreader to ambient (W/K).
    spreader_to_ambient: float = 1.05
    #: Std-dev of the Ornstein-Uhlenbeck ambient/airflow fluctuation
    #: (degC); 0 disables it.  A physical testbed's effective ambient
    #: wanders with airflow and room temperature — this is the slow
    #: variance behind the high short-interval autocorrelation of the
    #: paper's Figure 6.
    ambient_drift_sigma_c: float = 0.0
    #: Correlation time of the ambient fluctuation (seconds).
    ambient_drift_tau_s: float = 8.0

    def __post_init__(self) -> None:
        _check_finite("ambient_c", self.ambient_c)
        for name in ("core_capacitance", "spreader_capacitance",
                     "core_to_spreader", "spreader_to_ambient",
                     "ambient_drift_tau_s"):
            _check_positive(name, getattr(self, name))
        _check_non_negative("core_to_core", self.core_to_core)
        _check_non_negative("ambient_drift_sigma_c", self.ambient_drift_sigma_c)


@dataclass(frozen=True)
class SensorConfig:
    """On-board digital thermal sensor model.

    Intel DTS readings are quantised to 1 degC; we add a small Gaussian
    noise before quantisation so repeated samples of a steady core are
    realistic for the autocorrelation study of Figure 6.
    """

    #: Quantisation step in degrees Celsius (0 disables quantisation).
    quantisation_c: float = 1.0
    #: Standard deviation of additive Gaussian noise (degC).
    noise_std_c: float = 0.25
    #: Saturation limits of the sensor (degC).
    min_c: float = 0.0
    max_c: float = 125.0
    #: Time constant of the sensor reading path's low-pass filtering
    #: (seconds); 0 disables it.  Physical DTS readings respond with the
    #: sensor diode's own thermal mass plus firmware averaging — the
    #: reason consecutive 1 s samples of a real chip are so similar
    #: (Figure 6's autocorrelation panel).
    ema_tau_s: float = 0.0

    def __post_init__(self) -> None:
        if self.min_c >= self.max_c:
            raise ValueError(
                f"sensor range is empty: min_c={self.min_c} >= max_c={self.max_c}"
            )
        if self.quantisation_c < 0.0:
            raise ValueError(f"quantisation_c must be >= 0, got {self.quantisation_c}")
        if self.noise_std_c < 0.0:
            raise ValueError(f"noise_std_c must be >= 0, got {self.noise_std_c}")
        if self.ema_tau_s < 0.0:
            raise ValueError(f"ema_tau_s must be >= 0, got {self.ema_tau_s}")


@dataclass(frozen=True)
class PlatformConfig:
    """Everything that defines the simulated quad-core platform."""

    num_cores: int = 4
    #: Simulation tick in seconds.
    dt: float = 0.1
    opp_table: Tuple[OperatingPoint, ...] = field(default_factory=default_opp_table)
    power: PowerConfig = field(default_factory=PowerConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    sensor: SensorConfig = field(default_factory=SensorConfig)
    #: Adjacency of cores on the die as index pairs (2x2 grid by default).
    core_adjacency: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 3), (2, 3))

    def __post_init__(self) -> None:
        _check_int_at_least("num_cores", self.num_cores, 1)
        _check_positive("dt", self.dt)
        if not self.opp_table:
            raise ValueError("opp_table must list at least one operating point")
        for point in self.opp_table:
            if not isinstance(point, OperatingPoint):
                raise ValueError(
                    f"opp_table entries must be OperatingPoint, got {point!r}"
                )
        if not isinstance(self.power, PowerConfig):
            raise ValueError(f"power must be a PowerConfig, got {self.power!r}")
        if not isinstance(self.thermal, ThermalConfig):
            raise ValueError(
                f"thermal must be a ThermalConfig, got {self.thermal!r}"
            )
        if not isinstance(self.sensor, SensorConfig):
            raise ValueError(
                f"sensor must be a SensorConfig, got {self.sensor!r}"
            )
        for pair in self.core_adjacency:
            if len(pair) != 2 or pair[0] == pair[1]:
                raise ValueError(
                    f"core_adjacency entries must pair two distinct cores, "
                    f"got {pair!r}"
                )
            for core in pair:
                if not 0 <= core < self.num_cores:
                    raise ValueError(
                        f"core_adjacency references core {core} outside "
                        f"0..{self.num_cores - 1}"
                    )

    def min_frequency(self) -> float:
        """Lowest frequency of the OPP table in hertz."""
        return min(p.frequency_hz for p in self.opp_table)

    def max_frequency(self) -> float:
        """Highest frequency of the OPP table in hertz."""
        return max(p.frequency_hz for p in self.opp_table)

    def frequencies(self) -> List[float]:
        """All OPP frequencies in ascending order (hertz)."""
        return sorted(p.frequency_hz for p in self.opp_table)

    def voltage_for(self, frequency_hz: float) -> float:
        """Voltage of the OPP whose frequency matches ``frequency_hz``.

        Raises
        ------
        KeyError
            If no operating point has that exact frequency.
        """
        for point in self.opp_table:
            if abs(point.frequency_hz - frequency_hz) < 1.0:
                return point.voltage_v
        raise KeyError(f"no operating point at {frequency_hz} Hz")


# ---------------------------------------------------------------------------
# Fault injection and supervision (robustness layer)
# ---------------------------------------------------------------------------


def _check_probability(name: str, value: float) -> None:
    """Raise unless ``value`` is a probability in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultConfig:
    """Fault model of the sensor and actuation paths.

    Models the failure modes of a physical DTM substrate: ``coretemp``
    sensors that drop samples, latch, spike or drift, and a ``cpufreq``
    / affinity syscall interface whose transitions can be rejected or
    silently ignored.  All faults are injected from a dedicated seeded
    RNG stream, so a faulty run is exactly reproducible and a disabled
    config (``enabled=False``, the default) leaves every simulation
    bit-identical to a run without a fault model at all.

    Sensor-fault probabilities are per read and per core; actuation
    probabilities are per ``set_governor`` / ``set_mapping`` call.
    """

    #: Master switch; False means no fault injector is constructed.
    enabled: bool = False
    # --- sensor path -------------------------------------------------
    #: Probability a reading is dropped (returned as NaN).
    dropout_prob: float = 0.0
    #: Probability a reading carries a large transient spike.
    spike_prob: float = 0.0
    #: Magnitude of an injected spike (degC); sign is random.
    spike_magnitude_c: float = 30.0
    #: Probability a healthy sensor latches (stuck-at) on this read.
    stuck_prob: float = 0.0
    #: How long a latched sensor keeps repeating its value (seconds).
    stuck_duration_s: float = 30.0
    #: Slow miscalibration drift added to every core (degC per second).
    drift_rate_c_per_s: float = 0.0
    #: Static per-core offsets (degC); cycled over cores, empty = none.
    offset_c: Tuple[float, ...] = ()
    # --- actuation path ----------------------------------------------
    #: Probability a governor transition fails (cpufreq-set rejects it).
    governor_fail_prob: float = 0.0
    #: Probability a governor transition is silently ignored.
    governor_noop_prob: float = 0.0
    #: Probability an affinity change fails.
    mapping_fail_prob: float = 0.0
    #: Probability an affinity change is silently ignored.
    mapping_noop_prob: float = 0.0
    #: Seed of the dedicated fault RNG stream (mixed with the run seed).
    seed: int = 7331

    def __post_init__(self) -> None:
        _check_bool("enabled", self.enabled)
        _check_seed("seed", self.seed)
        _check_finite("drift_rate_c_per_s", self.drift_rate_c_per_s)
        for name in (
            "dropout_prob",
            "spike_prob",
            "stuck_prob",
            "governor_fail_prob",
            "governor_noop_prob",
            "mapping_fail_prob",
            "mapping_noop_prob",
        ):
            _check_probability(name, getattr(self, name))
        if self.governor_fail_prob + self.governor_noop_prob > 1.0:
            raise ValueError("governor fail+noop probabilities exceed 1")
        if self.mapping_fail_prob + self.mapping_noop_prob > 1.0:
            raise ValueError("mapping fail+noop probabilities exceed 1")
        if self.spike_magnitude_c < 0.0:
            raise ValueError(
                f"spike_magnitude_c must be >= 0, got {self.spike_magnitude_c}"
            )
        if self.stuck_duration_s < 0.0:
            raise ValueError(
                f"stuck_duration_s must be >= 0, got {self.stuck_duration_s}"
            )
        for offset in self.offset_c:
            if not math.isfinite(offset):
                raise ValueError(f"offset_c entries must be finite, got {offset}")


@dataclass(frozen=True)
class SupervisorConfig:
    """Graceful-degradation layer between the platform and controllers.

    Controls the :class:`repro.faults.SensorSupervisor` (reading
    sanitisation: range / rate-of-change / stuck checks with cross-core
    median and last-good-value fallbacks) and the
    :class:`repro.faults.ActuationSupervisor` (bounded retry with
    exponential backoff for failed governor/mapping transitions, and a
    thermal-emergency safe state that clamps the chip to its minimum
    operating point).
    """

    #: Master switch; False means the loop runs unsupervised.
    enabled: bool = False
    # --- sensor sanitisation -----------------------------------------
    #: Fastest physically plausible temperature slew (degC per second);
    #: readings moving faster than this are rejected as spikes.
    max_rate_c_per_s: float = 25.0
    #: Consecutive identical readings before a sensor is suspected stuck.
    stuck_window: int = 20
    #: Cross-core median deviation (degC) confirming a stuck sensor.
    stuck_delta_c: float = 3.0
    # --- thermal emergency -------------------------------------------
    #: Sanitised reading at/above which the safe state engages (degC).
    critical_temp_c: float = 90.0
    #: Sanitised reading at/below which the safe state releases (degC).
    emergency_release_c: float = 70.0
    #: Period of the supervisor's own watchdog sensor sampling (s).
    watchdog_period_s: float = 1.0
    # --- actuation retry ---------------------------------------------
    #: Retries after a failed/ignored actuation before giving up.
    max_retries: int = 3
    #: First retry delay (seconds); doubles on every further retry.
    retry_backoff_s: float = 0.4
    #: A requested actuation still not in force after this long forces
    #: the thermal-emergency safe state (seconds).
    fault_deadline_s: float = 10.0

    def __post_init__(self) -> None:
        _check_bool("enabled", self.enabled)
        if self.max_rate_c_per_s <= 0.0:
            raise ValueError(
                f"max_rate_c_per_s must be > 0, got {self.max_rate_c_per_s}"
            )
        if self.stuck_window < 2:
            raise ValueError(f"stuck_window must be >= 2, got {self.stuck_window}")
        if self.stuck_delta_c < 0.0:
            raise ValueError(f"stuck_delta_c must be >= 0, got {self.stuck_delta_c}")
        if self.emergency_release_c >= self.critical_temp_c:
            raise ValueError(
                "emergency_release_c must be below critical_temp_c "
                f"({self.emergency_release_c} >= {self.critical_temp_c})"
            )
        if self.watchdog_period_s <= 0.0:
            raise ValueError(
                f"watchdog_period_s must be > 0, got {self.watchdog_period_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s <= 0.0:
            raise ValueError(
                f"retry_backoff_s must be > 0, got {self.retry_backoff_s}"
            )
        if self.fault_deadline_s <= 0.0:
            raise ValueError(
                f"fault_deadline_s must be > 0, got {self.fault_deadline_s}"
            )


# ---------------------------------------------------------------------------
# Experiment engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EngineConfig:
    """Parallelism and caching of the experiment engine.

    Consumed by :class:`repro.experiments.engine.ExperimentEngine`; the
    defaults (one worker, caching on, the standard cache directory) are
    what ``repro all`` uses when no flags are given.
    """

    #: Worker processes; 1 means run every job inline (the serial path).
    jobs: int = 1
    #: Whether to read/write the content-addressed result cache.
    use_cache: bool = True
    #: Cache root directory; ``None`` selects ``$REPRO_CACHE_DIR`` or
    #: ``./.repro-cache``.
    cache_dir: "str | None" = None
    #: Wall-clock budget per job attempt in seconds; ``None`` disables
    #: the timeout (a hung worker then blocks the batch forever).
    job_timeout_s: "float | None" = None
    #: Total attempts per job (first try + retries) before the engine
    #: records a structured failure.
    max_job_attempts: int = 3
    #: Base of the deterministic exponential backoff *accounting*
    #: (``base * 2**(attempt-1)`` seconds, recorded per failure; the
    #: engine never sleeps, so retries stay deterministic and fast).
    retry_backoff_s: float = 0.5
    #: Checkpoint cadence in ticks for jobs run through the engine;
    #: ``None``/0 disables checkpointing.
    checkpoint_every: "int | None" = None
    #: Root directory for per-job checkpoint stores; ``None`` disables
    #: checkpointing and resume.
    checkpoint_dir: "str | None" = None
    #: Resume interrupted jobs from their newest valid checkpoint.
    resume: bool = False
    #: Route experiment grids through the vectorized ensemble engine:
    #: cells sharing a platform closure are batched into ensemble
    #: shards; results stay bit-identical to the scalar path.
    ensemble: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        _check_bool("use_cache", self.use_cache)
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise ValueError(
                f"cache_dir must be a string or None, got {self.cache_dir!r}"
            )
        if self.job_timeout_s is not None:
            _check_positive("job_timeout_s", self.job_timeout_s)
        _check_int_at_least("max_job_attempts", self.max_job_attempts, 1)
        _check_non_negative("retry_backoff_s", self.retry_backoff_s)
        if self.checkpoint_every is not None:
            _check_int_at_least("checkpoint_every", self.checkpoint_every, 1)
        if self.checkpoint_dir is not None and not isinstance(
            self.checkpoint_dir, str
        ):
            raise ValueError(
                f"checkpoint_dir must be a string or None, got {self.checkpoint_dir!r}"
            )
        _check_bool("resume", self.resume)
        _check_bool("ensemble", self.ensemble)


# ---------------------------------------------------------------------------
# Reliability
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityConfig:
    """Device parameters for the aging and thermal-cycling MTTF models.

    The constants follow the embedded-reliability literature that the
    paper cites (Chantem et al. [2], Ukhov et al. [17], Srinivasan et
    al. [15]) and are scaled, per the caption of Table 2, so that an
    unstressed (idle) core has an MTTF of exactly ``baseline_mttf_years``.
    """

    #: Reference temperature of an unstressed core (degC): aging rate 1.
    #: This is the steady-state temperature of an idle core on the default
    #: platform (ambient 30 degC plus idle leakage/package heat), so an
    #: idle run reports exactly the baseline MTTF.
    reference_temp_c: float = 34.0
    #: Activation energy of the aging (EM/NBTI) Arrhenius term (eV).
    aging_activation_energy_ev: float = 0.70
    #: Weibull slope of the lifetime distribution.
    weibull_beta: float = 2.0
    #: Coffin-Manson exponent ``b`` of Eq. 3.
    coffin_manson_exponent: float = 2.35
    #: Temperature amplitude below which deformation is elastic (K).
    elastic_threshold_k: float = 2.5
    #: Activation energy of the cycling term in Eq. 3 (eV).
    cycling_activation_energy_ev: float = 0.30
    #: MTTF of an unstressed core, the calibration anchor (years).
    baseline_mttf_years: float = 10.0
    #: Empirical Coffin-Manson scale ``ATC`` of Eq. 3.  ``None`` means
    #: auto-calibrate (see ``repro.reliability.mttf.calibrate_atc``) so
    #: that a reference profile cycling 10 K around 50 degC every 20 s
    #: yields a cycling MTTF of ``cycling_reference_mttf_years``, placing
    #: the Table 2 workloads inside the paper's 0.7-7.1 year band.
    cycling_scale_atc: "float | None" = None
    #: Target cycling MTTF of the calibration reference profile (years).
    cycling_reference_mttf_years: float = 1.5

    def __post_init__(self) -> None:
        _check_finite("reference_temp_c", self.reference_temp_c)
        for name in ("aging_activation_energy_ev", "weibull_beta",
                     "coffin_manson_exponent", "baseline_mttf_years",
                     "cycling_reference_mttf_years"):
            _check_positive(name, getattr(self, name))
        _check_non_negative("elastic_threshold_k", self.elastic_threshold_k)
        _check_non_negative(
            "cycling_activation_energy_ev", self.cycling_activation_energy_ev
        )
        if self.cycling_scale_atc is not None:
            _check_positive("cycling_scale_atc", self.cycling_scale_atc)


# ---------------------------------------------------------------------------
# Learning agent (the paper's contribution)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentConfig:
    """Hyper-parameters of Algorithm 1.

    The defaults correspond to the choices the paper reports in
    Section 6.4: a 3 s temperature sampling interval, a decision epoch
    chosen from the Figure 7 trade-off (30 s), and state/action space
    sizes from the Figure 8 trade-off.
    """

    #: Temperature sampling interval in seconds (Figure 6 sweeps this).
    sampling_interval_s: float = 3.0
    #: Decision epoch in seconds (Figure 7 sweeps this).
    decision_epoch_s: float = 30.0
    #: Number of stress bins Ns (Section 5.1).
    num_stress_bins: int = 3
    #: Number of aging bins Na (Section 5.1).
    num_aging_bins: int = 3
    #: Number of actions exposed to the agent (Figure 8 sweeps this).
    num_actions: int = 8
    #: Discount rate gamma of Eq. 7.
    discount: float = 0.50
    #: Time constant (in epochs) of the exponential alpha decay.
    alpha_decay_epochs: float = 8.0
    #: Alpha below which the agent is considered in pure exploitation.
    alpha_exploit_threshold: float = 0.05
    #: Alpha restored on intra-application variation (Section 5.4).
    alpha_intra: float = 0.15
    #: Lower/upper thresholds on the stress moving-average deviation.
    stress_ma_lower: float = 0.15
    stress_ma_upper: float = 0.20
    #: Lower/upper thresholds on the aging moving-average deviation.
    aging_ma_lower: float = 0.15
    aging_ma_upper: float = 0.20
    #: Window (in epochs) of the stress/aging moving averages.
    ma_window: int = 3
    #: Relative importance pairs (a, b) of stress vs aging in the reward
    #: (Section 5.2): cycling-dominant epochs use the first pair, aging
    #: dominant epochs the second.
    weight_stress_dominant: Tuple[float, float] = (0.75, 0.25)
    weight_aging_dominant: Tuple[float, float] = (0.25, 0.75)
    #: Width (in normalised units) of the Gaussian learning weights K1/K2.
    gaussian_width: float = 0.35
    #: Centre of the Gaussian learning weights in normalised [0, 1].
    gaussian_centre: float = 0.45
    #: Scale of the performance term (Pc - P) in the reward.
    performance_weight: float = 2.0
    #: Random seed for action exploration.
    seed: int = 2014

    def __post_init__(self) -> None:
        _check_positive("sampling_interval_s", self.sampling_interval_s)
        _check_positive("decision_epoch_s", self.decision_epoch_s)
        _check_int_at_least("num_stress_bins", self.num_stress_bins, 1)
        _check_int_at_least("num_aging_bins", self.num_aging_bins, 1)
        _check_int_at_least("num_actions", self.num_actions, 1)
        _check_probability("discount", self.discount)
        _check_positive("alpha_decay_epochs", self.alpha_decay_epochs)
        _check_probability("alpha_exploit_threshold", self.alpha_exploit_threshold)
        _check_probability("alpha_intra", self.alpha_intra)
        # The moving-average thresholds are deliberately allowed outside
        # [0, 1]: the ablation's no_variation variant pushes them beyond
        # any reachable deviation to disable detection.
        _check_non_negative("stress_ma_lower", self.stress_ma_lower)
        _check_non_negative("aging_ma_lower", self.aging_ma_lower)
        if self.stress_ma_upper < self.stress_ma_lower:
            raise ValueError(
                "stress_ma_upper must be >= stress_ma_lower "
                f"({self.stress_ma_upper} < {self.stress_ma_lower})"
            )
        if self.aging_ma_upper < self.aging_ma_lower:
            raise ValueError(
                "aging_ma_upper must be >= aging_ma_lower "
                f"({self.aging_ma_upper} < {self.aging_ma_lower})"
            )
        _check_int_at_least("ma_window", self.ma_window, 1)
        _check_weight_pair("weight_stress_dominant", self.weight_stress_dominant)
        _check_weight_pair("weight_aging_dominant", self.weight_aging_dominant)
        _check_positive("gaussian_width", self.gaussian_width)
        _check_finite("gaussian_centre", self.gaussian_centre)
        _check_finite("performance_weight", self.performance_weight)
        _check_seed("seed", self.seed)


@dataclass(frozen=True)
class GeQiuConfig:
    """Hyper-parameters of the Ge & Qiu (DAC 2011) baseline controller."""

    #: Sampling interval == decision interval (no decoupling).
    interval_s: float = 3.0
    #: Number of instantaneous-temperature bins in its state space.
    num_temp_bins: int = 8
    #: Temperature range covered by the bins (degC).
    temp_range_c: Tuple[float, float] = (30.0, 85.0)
    #: Temperature above which the reward turns into a penalty (the
    #: thermal constraint their manager keeps the chip under).
    temp_threshold_c: float = 55.0
    discount: float = 0.5
    alpha_decay_epochs: float = 40.0
    #: Weight of the over-threshold temperature penalty in its reward.
    temp_weight: float = 1.0
    #: Weight of the performance term in its reward.
    perf_weight: float = 0.6
    seed: int = 2011

    def __post_init__(self) -> None:
        _check_positive("interval_s", self.interval_s)
        _check_int_at_least("num_temp_bins", self.num_temp_bins, 2)
        if len(self.temp_range_c) != 2 or self.temp_range_c[0] >= self.temp_range_c[1]:
            raise ValueError(
                f"temp_range_c must be an ascending (lo, hi) pair, "
                f"got {self.temp_range_c!r}"
            )
        _check_finite("temp_threshold_c", self.temp_threshold_c)
        _check_probability("discount", self.discount)
        _check_positive("alpha_decay_epochs", self.alpha_decay_epochs)
        _check_non_negative("temp_weight", self.temp_weight)
        _check_non_negative("perf_weight", self.perf_weight)
        _check_seed("seed", self.seed)


def default_platform_config() -> PlatformConfig:
    """A fresh default platform configuration."""
    return PlatformConfig()


def default_reliability_config() -> ReliabilityConfig:
    """A fresh default reliability configuration."""
    return ReliabilityConfig()


def default_agent_config() -> AgentConfig:
    """A fresh default agent configuration."""
    return AgentConfig()
