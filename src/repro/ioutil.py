"""Durable file-writing helpers shared by every artefact writer.

A result that took minutes of simulation to produce must never be lost
to a half-written file: a crash (or SIGKILL) between ``open`` and
``close`` would otherwise leave a truncated JSON/pickle that poisons the
next run.  :func:`atomic_write` provides the standard recipe — write to
a temporary file in the *same directory*, flush, ``fsync``, then
``os.replace`` — so readers observe either the old content or the new
content, never a prefix of it.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, IO, Union


def atomic_write(
    path: Union[str, Path],
    writer: Callable[[IO[bytes]], None],
) -> None:
    """Atomically create/replace ``path`` with content produced by ``writer``.

    Parameters
    ----------
    path:
        Destination file.  Parent directories are created if missing.
    writer:
        Callback receiving a binary file object opened for writing; it
        must write the complete content.  The temporary file lives in
        the destination's directory so the final ``os.replace`` stays on
        one filesystem (rename atomicity).

    The sequence is: write to temp file → flush → ``os.fsync`` →
    ``os.replace``.  On any failure the temp file is removed and the
    destination is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically write raw bytes to ``path``."""
    atomic_write(path, lambda handle: handle.write(data))


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically write ``text`` to ``path`` (durable ``write_text``)."""
    atomic_write_bytes(path, text.encode(encoding))
