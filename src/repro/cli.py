"""Command-line interface: regenerate any paper artefact from a shell.

::

    python -m repro table2            # Table 2
    python -m repro fig3 --scale 0.5  # Figure 3 at half length
    python -m repro run tachyon --dataset "set 1" --policy proposed
    python -m repro list              # available artefacts & policies

Every artefact command prints the same console table its benchmark
prints.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments.ablation import run_ablation
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.fig1_motivation import run_fig1
from repro.experiments.fig3_inter import run_fig3
from repro.experiments.fig45_phases import run_fig45
from repro.experiments.fig6_sampling import run_fig6
from repro.experiments.fig7_epoch import run_fig7
from repro.experiments.fig8_convergence import run_fig8
from repro.experiments.fig9_power import run_fig9
from repro.experiments.runner import POLICIES, run_workload
from repro.experiments.table2_intra import run_table2
from repro.experiments.table3_exec_time import run_table3
from repro.faults.presets import FAULT_MODES, default_supervisor_config, fault_config_for
from repro.workloads.alpbench import APP_NAMES

#: Artefact name -> experiment entry point.
ARTEFACTS: Dict[str, Callable] = {
    "fig1": run_fig1,
    "table2": run_table2,
    "fig3": run_fig3,
    "fig45": run_fig45,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "table3": run_table3,
    "fig9": run_fig9,
    "ablation": run_ablation,
    "fault_tolerance": run_fault_tolerance,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DAC'14 RL thermal-management paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ARTEFACTS:
        artefact = sub.add_parser(name, help=f"regenerate {name}")
        artefact.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="application-length scale (default 1.0)",
        )
        artefact.add_argument("--seed", type=int, default=1)

    run = sub.add_parser("run", help="run one workload under one policy")
    run.add_argument("app", choices=APP_NAMES)
    run.add_argument("--dataset", default=None)
    run.add_argument("--policy", default="proposed", choices=POLICIES)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--faults",
        default="none",
        choices=FAULT_MODES,
        help="inject faults into the sensor/actuation paths",
    )
    run.add_argument(
        "--supervised",
        action="store_true",
        help="enable the sensor/actuation supervision layer",
    )

    sub.add_parser("list", help="list artefacts, applications and policies")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    summary = run_workload(
        args.app,
        args.dataset,
        args.policy,
        seed=args.seed,
        iteration_scale=args.scale,
        faults=fault_config_for(args.faults),
        supervisor=default_supervisor_config() if args.supervised else None,
    )
    print(f"{summary.app} ({summary.dataset}) under {summary.policy}:")
    print(f"  average temperature : {summary.average_temp_c:8.1f} C")
    print(f"  peak temperature    : {summary.peak_temp_c:8.1f} C")
    print(f"  cycling MTTF        : {summary.cycling_mttf_years:8.2f} years")
    print(f"  aging MTTF          : {summary.aging_mttf_years:8.2f} years")
    print(f"  execution time      : {summary.execution_time_s:8.1f} s")
    print(f"  avg dynamic power   : {summary.average_dynamic_power_w:8.1f} W")
    print(f"  dynamic energy      : {summary.dynamic_energy_j / 1e3:8.1f} kJ")
    if args.faults != "none":
        injected = sum(
            summary.fault_stats.get(key, 0.0)
            for key in ("dropouts", "spikes", "stuck_reads",
                        "governor_failures", "governor_noops",
                        "mapping_failures", "mapping_noops")
        )
        print(f"  injected faults     : {injected:8.0f}")
    if args.supervised:
        stats = summary.supervisor_stats
        fixups = (
            stats.get("sensor_median_fallbacks", 0.0)
            + stats.get("sensor_hold_fallbacks", 0.0)
            + stats.get("sensor_failsafe_fallbacks", 0.0)
        )
        print(f"  supervisor fixups   : {fixups:8.0f}")
        print(f"  emergencies         : {stats.get('emergencies', 0.0):8.0f}")
    return 0


def _command_list() -> int:
    print("artefacts   :", ", ".join(ARTEFACTS))
    print("applications:", ", ".join(APP_NAMES))
    print("policies    :", ", ".join(POLICIES))
    print("fault modes :", ", ".join(FAULT_MODES))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    experiment = ARTEFACTS[args.command]
    result = experiment(iteration_scale=args.scale, seed=args.seed)
    print(result.format_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
