"""Command-line interface: regenerate any paper artefact from a shell.

::

    python -m repro all               # every artefact, serial
    python -m repro all --jobs 8      # every artefact, 8 worker processes
    python -m repro table2            # Table 2
    python -m repro fig3 --scale 0.5  # Figure 3 at half length
    python -m repro run tachyon --dataset "set 1" --policy proposed
    python -m repro run tachyon --profile   # + cProfile hot-spot dump
    python -m repro bench             # tick-loop benchmark -> BENCH_PR3.json
    python -m repro ensemble run tachyon --members 64   # vectorized seed grid
    python -m repro ensemble bench    # trajectories/sec -> BENCH_PR7.json
    python -m repro list              # available artefacts & policies
    python -m repro run tachyon --checkpoint-every 500 --checkpoint-dir ckpts
    python -m repro run tachyon --checkpoint-dir ckpts --resume
    python -m repro ckpt verify ckpts # audit a checkpoint chain

Every artefact command prints the same console table its benchmark
prints.  Artefact commands run through the experiment engine
(:mod:`repro.experiments.engine`): ``--jobs N`` fans the grid out over
``N`` worker processes and completed runs are memoised in a
content-addressed cache under ``.repro-cache/`` (``--no-cache``
disables it; ``--jobs 1 --no-cache`` is the original serial code
path).  ``all`` additionally writes each table to ``results/<name>.txt``
— or, at reduced ``--scale``, into the cache tree so scaled output
never clobbers the committed full-scale artefacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import EngineConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.engine.sweep import ARTEFACTS, regenerate_all
from repro.experiments.runner import POLICIES, run_workload
from repro.faults.presets import FAULT_MODES, default_supervisor_config, fault_config_for
from repro.workloads.alpbench import APP_NAMES


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The engine flags shared by every artefact command and ``all``."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid (default 1: serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed result cache under .repro-cache/",
    )
    parser.add_argument(
        "--ensemble",
        action="store_true",
        help="batch grid cells sharing a platform closure through the "
        "vectorized ensemble engine (bit-identical results, sharded "
        "across --jobs worker processes)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill any single job attempt running longer than this "
        "(parallel mode only; default: no timeout)",
    )
    parser.add_argument(
        "--max-job-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per job before it is recorded as failed (default 3)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base of the deterministic retry backoff accounting "
        "(default 0.5)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="TICKS",
        help="snapshot each job's full simulation state every TICKS ticks",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="root directory for per-job checkpoint stores",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume interrupted jobs from their newest valid checkpoint "
        "under --checkpoint-dir",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DAC'14 RL thermal-management paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ARTEFACTS:
        artefact = sub.add_parser(name, help=f"regenerate {name}")
        artefact.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="application-length scale (default 1.0)",
        )
        artefact.add_argument("--seed", type=int, default=1)
        _add_engine_flags(artefact)

    everything = sub.add_parser(
        "all", help="regenerate every results/*.txt artefact in one sweep"
    )
    everything.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="application-length scale (non-1.0 output goes to the cache tree)",
    )
    everything.add_argument("--seed", type=int, default=1)
    everything.add_argument(
        "--only",
        default=None,
        help="comma-separated subset of artefacts (default: all of them)",
    )
    everything.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-artefact tables (summary only)",
    )
    everything.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write sweep metrics to PATH (Prometheus text for .prom, "
        "JSON otherwise)",
    )
    _add_engine_flags(everything)

    run = sub.add_parser("run", help="run one workload under one policy")
    run.add_argument("app", choices=APP_NAMES)
    run.add_argument("--dataset", default=None)
    run.add_argument("--policy", default="proposed", choices=POLICIES)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--faults",
        default="none",
        choices=FAULT_MODES,
        help="inject faults into the sensor/actuation paths",
    )
    run.add_argument(
        "--supervised",
        action="store_true",
        help="enable the sensor/actuation supervision layer",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="record a schema-versioned JSONL event trace of the run",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="collect metrics and export them as JSON + Prometheus text",
    )
    run.add_argument(
        "--obs-dir",
        default="obs",
        help="directory for trace/metrics/result/manifest artefacts "
        "(default ./obs)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="TICKS",
        help="snapshot the full simulation state every TICKS ticks",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="checkpoint store directory (required for --checkpoint-every)",
    )
    run.add_argument(
        "--resume",
        nargs="?",
        const=True,
        default=False,
        metavar="CKPT",
        help="resume from the newest valid checkpoint in --checkpoint-dir, "
        "or from an explicit checkpoint file",
    )

    ckpt = sub.add_parser(
        "ckpt", help="inspect and maintain a checkpoint directory"
    )
    ckpt_sub = ckpt.add_subparsers(dest="ckpt_command", required=True)
    ckpt_list = ckpt_sub.add_parser(
        "list", help="list the manifest chain of a checkpoint directory"
    )
    ckpt_list.add_argument("dir", help="checkpoint directory")
    ckpt_verify = ckpt_sub.add_parser(
        "verify",
        help="re-hash every checkpoint and audit the manifest chain",
    )
    ckpt_verify.add_argument("dir", help="checkpoint directory")
    ckpt_prune = ckpt_sub.add_parser(
        "prune", help="drop all but the newest N valid checkpoints"
    )
    ckpt_prune.add_argument("dir", help="checkpoint directory")
    ckpt_prune.add_argument(
        "--keep",
        type=int,
        default=3,
        metavar="N",
        help="valid checkpoints to retain (default 3)",
    )

    trace = sub.add_parser("trace", help="inspect JSONL run traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="validate a trace and recompute its headline statistics",
    )
    summarize.add_argument("path", help="trace.jsonl file to summarise")
    summarize.add_argument(
        "--check-result",
        default=None,
        metavar="RESULT_JSON",
        help="fail (exit 1) unless the recomputed headline matches this "
        "result.json's embedded trace summary",
    )

    bench = sub.add_parser(
        "bench", help="benchmark the tick loop and write BENCH_PR3.json"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer ticks and repeats",
    )
    bench.add_argument(
        "--ticks", type=int, default=None, help="measured ticks per run"
    )
    bench.add_argument(
        "--repeats", type=int, default=None, help="timed runs per workload"
    )
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument(
        "--output",
        default="BENCH_PR3.json",
        help="where to write the JSON report (default BENCH_PR3.json)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE_JSON",
        help="print per-workload speedup deltas vs this committed "
        "baseline and fail (exit 1) past --max-regression",
    )
    bench.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE_JSON",
        help="like --compare without the delta table (older spelling)",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional slowdown vs the baseline (default 0.30)",
    )

    ensemble = sub.add_parser(
        "ensemble",
        help="vectorized many-member execution (ensemble run / bench)",
    )
    ensemble_sub = ensemble.add_subparsers(dest="ensemble_command", required=True)
    ens_run = ensemble_sub.add_parser(
        "run",
        help="run one workload across a seed grid as one vectorized job",
    )
    ens_run.add_argument("app", choices=APP_NAMES)
    ens_run.add_argument("--dataset", default=None)
    ens_run.add_argument("--policy", default="proposed", choices=POLICIES)
    ens_run.add_argument(
        "--members",
        type=int,
        default=8,
        help="ensemble size; members get seeds seed..seed+members-1 "
        "(default 8)",
    )
    ens_run.add_argument("--seed", type=int, default=1)
    ens_run.add_argument("--scale", type=float, default=1.0)
    ens_run.add_argument(
        "--max-time",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-member wall-clock cap in simulated seconds",
    )
    ens_run.add_argument(
        "--faults",
        default="none",
        choices=FAULT_MODES,
        help="inject faults into every member's sensor/actuation paths",
    )
    ens_run.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the content-addressed result cache",
    )
    ens_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; members are split into this many "
        "deterministic shards (results are bit-identical at any "
        "shard count; default 1)",
    )
    ens_run.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a shard running longer than this",
    )
    ens_run.add_argument(
        "--max-job-attempts",
        type=int,
        default=3,
        help="attempts per shard before recording a failure (default 3)",
    )
    ens_run.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base of the recorded exponential retry backoff "
        "(default 0.5)",
    )
    ens_bench = ensemble_sub.add_parser(
        "bench",
        help="trajectories/sec benchmark and write BENCH_PR8.json",
    )
    ens_bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer ticks and repeats (same member count)",
    )
    ens_bench.add_argument(
        "--members",
        type=int,
        default=None,
        help="ensemble width (default 256)",
    )
    ens_bench.add_argument(
        "--ticks", type=int, default=None, help="measured ensemble ticks per run"
    )
    ens_bench.add_argument(
        "--repeats", type=int, default=None, help="timed runs per workload"
    )
    ens_bench.add_argument(
        "--scalar-ticks",
        type=int,
        default=None,
        help="measured ticks for the serial scalar baseline",
    )
    ens_bench.add_argument("--seed", type=int, default=1)
    ens_bench.add_argument(
        "--grids",
        action="store_true",
        help="also measure the grid planner (scalar serial vs "
        "--ensemble engine on a seed-replicated grid) and label the "
        "report BENCH_PR9",
    )
    ens_bench.add_argument(
        "--min-grid-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="with --grids: fail (exit 1) when the jobs=1 ensemble grid "
        "run is not at least FACTOR x faster than the scalar serial grid",
    )
    ens_bench.add_argument(
        "--output",
        default="BENCH_PR8.json",
        help="where to write the JSON report (default BENCH_PR8.json)",
    )
    ens_bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE_JSON",
        help="print per-workload speedup deltas vs this committed "
        "baseline and fail (exit 1) past --max-regression",
    )
    ens_bench.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE_JSON",
        help="like --compare without the delta table (older spelling)",
    )
    ens_bench.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional slowdown vs the baseline (default 0.30)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the determinism-aware static analysis over the package",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-versioned JSON report instead of text",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="CODE",
        default=None,
        help="run only this rule (repeatable; default: all rules)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: ./.repro-lint-baseline.json if present)",
    )
    lint.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )

    audit = sub.add_parser(
        "audit",
        help="run the project-level repro audit (call graph, closure digest)",
    )
    audit.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="package tree to audit (default: the installed repro package)",
    )
    audit.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-versioned JSON report instead of text",
    )
    audit.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="CODE",
        default=None,
        help="run only this audit rule (repeatable; default: all rules)",
    )
    audit.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: ./.repro-audit-baseline.json if present)",
    )
    audit.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline (closure digest, pairs, findings) and exit 0",
    )
    audit.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered audit rule and exit",
    )
    audit.add_argument(
        "--check-drift",
        action="store_true",
        help="also fail when the closure digest drifted from the baseline",
    )
    audit.add_argument(
        "--show-closure",
        action="store_true",
        help="print the per-module fingerprint table behind the digest",
    )
    audit.add_argument(
        "--explain",
        default=None,
        metavar="JOB_KEY",
        help="explain whether a cached entry (key or >=8-char prefix) is stale",
    )
    audit.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )

    sub.add_parser("list", help="list artefacts, applications and policies")
    return parser


def _engine_from(args: argparse.Namespace) -> ExperimentEngine:
    """Build the engine an artefact command asked for."""
    return ExperimentEngine.from_config(
        EngineConfig(
            jobs=args.jobs,
            use_cache=not args.no_cache,
            job_timeout_s=args.job_timeout,
            max_job_attempts=args.max_job_attempts,
            retry_backoff_s=args.retry_backoff,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            resume=bool(args.resume),
            ensemble=bool(getattr(args, "ensemble", False)),
        )
    )


def _write_metrics(registry, path: Path) -> None:
    """Export a registry: Prometheus text for ``.prom``, JSON otherwise."""
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".prom":
        path.write_text(registry.render_prometheus())
    else:
        path.write_text(registry.to_json() + "\n")


def _command_all(args: argparse.Namespace) -> int:
    engine = _engine_from(args)
    if args.metrics is not None:
        from repro.obs import MetricsRegistry

        engine.metrics = MetricsRegistry()
    artefacts = args.only.split(",") if args.only else None
    report = regenerate_all(
        iteration_scale=args.scale,
        seed=args.seed,
        engine=engine,
        artefacts=artefacts,
        progress=print,
    )
    if not args.quiet:
        for run in report.runs:
            print(run.text)
            print()
    for line in report.summary_lines():
        print(line)
    if args.metrics is not None:
        path = Path(args.metrics)
        _write_metrics(engine.metrics, path)
        print(f"metrics written to {path}")
    manifest_path = _write_sweep_manifest(args, report)
    print(f"manifest written to {manifest_path}")
    return 0 if report.ok else 1


def _write_sweep_manifest(args: argparse.Namespace, report) -> Path:
    """Bind the sweep's outputs — and its structured job failures — to
    the configuration that produced them."""
    from repro.obs import build_manifest

    sweep_config = {
        "command": "all",
        "scale": args.scale,
        "seed": args.seed,
        "only": args.only,
        "jobs": args.jobs,
        "ensemble": bool(getattr(args, "ensemble", False)),
    }
    run_record = dict(sweep_config)
    run_record["failures"] = {
        name: [failure.as_dict() for failure in job_failures]
        for name, job_failures in report.failed_artefacts.items()
    }
    if report.stats is not None:
        run_record["engine_stats"] = report.stats.as_dict()
    manifest = build_manifest(
        sweep_config, run=run_record, repo_dir=report.output_dir
    )
    for run in report.runs:
        manifest.add_artefact(run.path, report.output_dir)
    return manifest.write(report.output_dir)


def _command_run(args: argparse.Namespace) -> int:
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    instrumentation = None
    registry = None
    tracer = None
    if args.trace or args.metrics:
        from repro.obs import Instrumentation, MetricsRegistry, TraceEmitter

        registry = MetricsRegistry() if args.metrics else None
        tracer = TraceEmitter() if args.trace else None
        instrumentation = Instrumentation(registry=registry, tracer=tracer)
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and isinstance(args.resume, str):
        # An explicit checkpoint file implies its directory's store.
        checkpoint_dir = str(Path(args.resume).parent)
    summary = run_workload(
        args.app,
        args.dataset,
        args.policy,
        seed=args.seed,
        iteration_scale=args.scale,
        faults=fault_config_for(args.faults),
        supervisor=default_supervisor_config() if args.supervised else None,
        instrumentation=instrumentation,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        resume=args.resume,
    )
    if profiler is not None:
        import pstats

        profiler.disable()
        print(f"profile of `repro run {args.app} --policy {args.policy}`:")
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
        stats.sort_stats("tottime").print_stats(15)
    print(f"{summary.app} ({summary.dataset}) under {summary.policy}:")
    print(f"  average temperature : {summary.average_temp_c:8.1f} C")
    print(f"  peak temperature    : {summary.peak_temp_c:8.1f} C")
    print(f"  cycling MTTF        : {summary.cycling_mttf_years:8.2f} years")
    print(f"  aging MTTF          : {summary.aging_mttf_years:8.2f} years")
    print(f"  execution time      : {summary.execution_time_s:8.1f} s")
    print(f"  avg dynamic power   : {summary.average_dynamic_power_w:8.1f} W")
    print(f"  dynamic energy      : {summary.dynamic_energy_j / 1e3:8.1f} kJ")
    if args.faults != "none":
        injected = sum(
            summary.fault_stats.get(key, 0.0)
            for key in ("dropouts", "spikes", "stuck_reads",
                        "governor_failures", "governor_noops",
                        "mapping_failures", "mapping_noops")
        )
        print(f"  injected faults     : {injected:8.0f}")
    if args.supervised:
        stats = summary.supervisor_stats
        fixups = (
            stats.get("sensor_median_fallbacks", 0.0)
            + stats.get("sensor_hold_fallbacks", 0.0)
            + stats.get("sensor_failsafe_fallbacks", 0.0)
        )
        print(f"  supervisor fixups   : {fixups:8.0f}")
        print(f"  emergencies         : {stats.get('emergencies', 0.0):8.0f}")
    if instrumentation is not None:
        _write_run_observability(args, summary, registry, tracer)
    return 0


def _write_run_observability(
    args: argparse.Namespace, summary, registry, tracer
) -> None:
    """Write the trace/metrics/result/manifest artefacts of one run."""
    from repro.obs import build_manifest, summarize_events, write_events

    obs_dir = Path(args.obs_dir)
    obs_dir.mkdir(parents=True, exist_ok=True)
    run_config = {
        "app": args.app,
        "dataset": args.dataset,
        "policy": args.policy,
        "seed": args.seed,
        "scale": args.scale,
        "faults": args.faults,
        "supervised": bool(args.supervised),
    }
    result_doc = {
        "run": run_config,
        "summary": {
            "average_temp_c": summary.average_temp_c,
            "peak_temp_c": summary.peak_temp_c,
            "aging_mttf_years": summary.aging_mttf_years,
            "cycling_mttf_years": summary.cycling_mttf_years,
            "num_cycles": summary.num_cycles,
            "execution_time_s": summary.execution_time_s,
            "throughput": summary.throughput,
            "completed": summary.completed,
        },
    }
    paths = []
    if tracer is not None:
        paths.append(write_events(tracer.events, obs_dir / "trace.jsonl"))
        # The headline the trace alone must reproduce (checked by
        # `repro trace summarize --check-result`).
        result_doc["trace"] = summarize_events(
            tracer.events, validate=False
        ).as_dict()
    if registry is not None:
        metrics_json = obs_dir / "metrics.json"
        metrics_json.write_text(registry.to_json() + "\n")
        metrics_prom = obs_dir / "metrics.prom"
        metrics_prom.write_text(registry.render_prometheus())
        paths.extend([metrics_json, metrics_prom])
    result_path = obs_dir / "result.json"
    result_path.write_text(
        json.dumps(result_doc, indent=2, sort_keys=True) + "\n"
    )
    paths.append(result_path)
    manifest = build_manifest(run_config, run=run_config, repo_dir=obs_dir)
    for path in paths:
        manifest.add_artefact(path, obs_dir)
    manifest_path = manifest.write(obs_dir)
    for path in paths + [manifest_path]:
        print(f"wrote {path}")


def _command_ckpt(args: argparse.Namespace) -> int:
    from repro.checkpoint import CheckpointStore

    store = CheckpointStore(args.dir)
    if args.ckpt_command == "list":
        entries = store.entries()
        if not entries:
            print(f"no checkpoint chain under {args.dir}")
            return 0
        print(f"{'tick':>10} {'digest':<12} {'bytes':>9}  file")
        for entry in entries:
            print(
                f"{entry.tick:>10} {entry.digest[:12]:<12} "
                f"{entry.bytes:>9}  {entry.file}"
            )
        return 0
    if args.ckpt_command == "verify":
        reports = store.verify()
        if not reports:
            print(f"nothing to verify under {args.dir}")
            return 0
        bad = 0
        print(f"{'tick':>10} {'digest':<12} {'status':<8} {'chain':<6} file")
        for report in reports:
            healthy = report["status"] == "ok" and report["chain_ok"]
            bad += 0 if healthy else 1
            tick = "?" if report["tick"] is None else report["tick"]
            print(
                f"{tick:>10} {report['digest'][:12]:<12} "
                f"{report['status']:<8} "
                f"{'ok' if report['chain_ok'] else 'BROKEN':<6} "
                f"{report['file']}"
            )
        print(
            f"{len(reports)} checkpoint(s), "
            f"{len(reports) - bad} healthy, {bad} problem(s)"
        )
        return 0 if bad == 0 else 1
    if args.ckpt_command == "prune":
        if args.keep < 1:
            print("--keep must be >= 1")
            return 2
        removed = store.prune(args.keep)
        for record in removed:
            print(f"removed {record.file} (tick {record.tick})")
        print(
            f"pruned {len(removed)} checkpoint(s), "
            f"kept {len(store.entries())}"
        )
        return 0
    raise AssertionError(f"unhandled ckpt command {args.ckpt_command!r}")


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        TraceValidationError,
        format_summary,
        read_events,
        summarize_events,
    )

    try:
        summary = summarize_events(read_events(args.path), validate=True)
    except TraceValidationError as exc:
        print(f"invalid trace: {exc}")
        return 1
    print(format_summary(summary))
    if args.check_result is not None:
        document = json.loads(Path(args.check_result).read_text())
        recorded = document.get("trace")
        if recorded is None:
            print(f"{args.check_result} embeds no trace summary")
            return 1
        recomputed = summary.as_dict()
        mismatches = [
            key
            for key in recorded
            if recorded[key] != recomputed.get(key)
        ]
        if mismatches:
            for key in mismatches:
                print(
                    f"MISMATCH {key}: result.json has {recorded[key]!r}, "
                    f"trace gives {recomputed.get(key)!r}"
                )
            return 1
        print(f"trace matches {args.check_result}")
    return 0


def _gate_bench_report(args: argparse.Namespace, report, baseline) -> int:
    """Shared ``--compare``/``--check-against`` epilogue of both benches.

    With ``--compare`` the per-workload speedup deltas are printed
    before the gate; either flag fails (exit 1) on a regression past
    ``--max-regression``.
    """
    from repro.perf import bench

    baseline_path = (
        args.compare if args.compare is not None else args.check_against
    )
    if args.compare is not None:
        print(f"comparison vs {baseline_path}:")
        for line in bench.compare_reports(report, baseline):
            print(f"  {line}")
    failures = bench.check_regression(
        report, baseline, max_regression=args.max_regression
    )
    if failures:
        print(f"REGRESSION vs {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"no regression vs {baseline_path} "
        f"(tolerance {args.max_regression:.0%})"
    )
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf import bench

    baseline_path = (
        args.compare if args.compare is not None else args.check_against
    )
    baseline = (
        bench.load_report(baseline_path) if baseline_path is not None else None
    )
    report = bench.run_bench(
        quick=args.quick,
        ticks=args.ticks,
        repeats=args.repeats,
        seed=args.seed,
        progress=print,
    )
    bench.write_report(report, args.output)
    print()
    print(bench.format_report(report))
    print(f"report written to {args.output}")
    if baseline is not None:
        return _gate_bench_report(args, report, baseline)
    return 0


def _command_ensemble_bench(args: argparse.Namespace) -> int:
    from repro.perf import bench

    baseline_path = (
        args.compare if args.compare is not None else args.check_against
    )
    baseline = (
        bench.load_report(baseline_path) if baseline_path is not None else None
    )
    report = bench.run_ensemble_bench(
        quick=args.quick,
        members=args.members,
        ticks=args.ticks,
        repeats=args.repeats,
        scalar_ticks=args.scalar_ticks,
        seed=args.seed,
        grids=args.grids,
        progress=print,
    )
    bench.write_report(report, args.output)
    print()
    print(bench.format_ensemble_report(report))
    print(f"report written to {args.output}")
    if args.min_grid_speedup is not None:
        failures = bench.check_grid_speedup(report, args.min_grid_speedup)
        for line in failures:
            print(f"GRID SPEEDUP FAILURE: {line}")
        if failures:
            return 1
    if baseline is not None:
        return _gate_bench_report(args, report, baseline)
    return 0


def _command_ensemble_run(args: argparse.Namespace) -> int:
    from repro.ensemble.shard import run_sharded_ensemble_job
    from repro.experiments.engine.cache import ResultCache, default_cache_root
    from repro.experiments.engine.scheduler import ExperimentEngine
    from repro.experiments.engine.spec import EnsembleJobSpec, workload_job

    if args.members < 1:
        print("--members must be at least 1")
        return 2
    if args.jobs < 1:
        print("--jobs must be at least 1")
        return 2
    faults = fault_config_for(args.faults)
    spec = EnsembleJobSpec(
        members=tuple(
            workload_job(
                args.app,
                dataset=args.dataset,
                policy=args.policy,
                seed=args.seed + offset,
                iteration_scale=args.scale,
                max_time_s=args.max_time,
                faults=faults,
            )
            for offset in range(args.members)
        )
    )
    cache = None if args.no_cache else ResultCache(default_cache_root())
    # Member-level caching happens in the sharding layer under scalar
    # keys; the engine itself stays uncached (a shard's composite
    # result is not one cacheable summary).
    engine = ExperimentEngine(
        jobs=args.jobs,
        cache=None,
        job_timeout_s=args.job_timeout,
        max_job_attempts=args.max_job_attempts,
        retry_backoff_s=args.retry_backoff,
    )
    report = run_sharded_ensemble_job(spec, engine, cache=cache)
    print(
        f"{'seed':>6} {'avg C':>8} {'peak C':>8} {'aging yr':>9} "
        f"{'cyc yr':>9} {'thr/s':>9} {'done':>5}"
    )
    completed = []
    for member, summary in zip(spec.members, report.summaries):
        if summary is None:
            print(f"{member.seed:6d} {'-- shard failed; see below --':>48}")
            continue
        completed.append(summary)
        print(
            f"{member.seed:6d} {summary.average_temp_c:8.2f} "
            f"{summary.peak_temp_c:8.2f} {summary.aging_mttf_years:9.2f} "
            f"{summary.cycling_mttf_years:9.2f} {summary.throughput:9.4f} "
            f"{'yes' if summary.completed else 'no':>5}"
        )
    count = len(completed)
    if count:
        print(
            f"ensemble of {count}: "
            f"mean avg "
            f"{sum(s.average_temp_c for s in completed) / count:.2f} C, "
            f"mean aging MTTF "
            f"{sum(s.aging_mttf_years for s in completed) / count:.2f} yr"
        )
    stats = engine.stats.as_dict()
    print(
        f"{report.cache_hits} member(s) from cache, "
        f"{report.executed_members} executed across "
        f"{report.shards} shard(s); "
        f"recovered: {stats.get('retried', 0)} retried attempt(s), "
        f"{stats.get('timeouts', 0)} timeout(s), "
        f"{stats.get('pool_restarts', 0)} pool restart(s)"
    )
    for failure in report.failures:
        suffix = ", timed out" if failure.timed_out else ""
        print(
            f"FAILED {failure.label} [{failure.key[:12]}] "
            f"{failure.error_type}: {failure.message} "
            f"({failure.attempts} attempts, "
            f"{failure.duration_s:.1f} s{suffix})"
        )
    return 0 if report.ok else 1


def _command_ensemble(args: argparse.Namespace) -> int:
    if args.ensemble_command == "bench":
        return _command_ensemble_bench(args)
    return _command_ensemble_run(args)


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import (
        BASELINE_FILENAME,
        all_rule_classes,
        lint_paths,
        load_baseline,
        render_human,
        render_json,
        save_baseline,
    )

    if args.list_rules:
        for code, cls in all_rule_classes().items():
            meta = cls.meta
            print(f"{code} [{meta.severity}] {meta.name}")
            print(f"    {meta.rationale}")
        return 0
    baseline_path = Path(args.baseline) if args.baseline else Path(BASELINE_FILENAME)
    baseline = {}
    if not args.fix_baseline and baseline_path.exists():
        baseline = load_baseline(baseline_path)
    try:
        report = lint_paths(
            args.paths or None, rules=args.rules, baseline=baseline
        )
    except KeyError as exc:
        print(exc.args[0])
        return 2
    if args.fix_baseline:
        count = save_baseline(baseline_path, report.active)
        print(f"baseline {baseline_path} rewritten with {count} finding(s)")
        return 0
    if args.json:
        print(render_json(report))
    else:
        print(render_human(report, verbose=args.verbose))
    return report.exit_code()


def _command_audit(args: argparse.Namespace) -> int:
    from repro.analysis.audit import (
        AUDIT_BASELINE_FILENAME,
        AuditBaseline,
        MALFORMED_MARKER_CODE,
        all_audit_rule_classes,
        audit_project,
        closure_digest,
        explain_job_key,
        load_audit_baseline,
        render_audit_human,
        render_audit_json,
        render_closure_table,
        save_audit_baseline,
    )
    from repro.experiments.engine.cache import default_cache_root
    from repro.experiments.engine.spec import behavior_digest

    if args.list_rules:
        for code, cls in all_audit_rule_classes().items():
            meta = cls.meta
            print(f"{code} [{meta.severity}] {meta.name}")
            print(f"    {meta.rationale}")
        print(f"{MALFORMED_MARKER_CODE} [error] behavior-irrelevant marker "
              "without a reason")
        print("    every fingerprint opt-out must say why it cannot change "
              "behavior")
        return 0
    root = Path(args.root) if args.root else None
    if args.explain:
        digest = closure_digest(root) if root is not None else behavior_digest()
        print(explain_job_key(args.explain, default_cache_root(), digest))
        return 0
    baseline_path = (
        Path(args.baseline) if args.baseline else Path(AUDIT_BASELINE_FILENAME)
    )
    baseline = AuditBaseline()
    if not args.fix_baseline and baseline_path.exists():
        baseline = load_audit_baseline(baseline_path)
    try:
        report = audit_project(root, rules=args.rules, baseline=baseline)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    if args.fix_baseline:
        assert report.closure is not None
        count = save_audit_baseline(
            baseline_path,
            closure_digest=report.closure.digest,
            pairs=report.pairs,
            findings=report.active,
        )
        print(
            f"baseline {baseline_path} rewritten: closure "
            f"{report.closure.digest[:16]}, {len(report.pairs)} pair(s), "
            f"{count} finding(s)"
        )
        return 0
    if args.show_closure:
        print(render_closure_table(report))
        return 0
    if args.json:
        print(render_audit_json(report))
    else:
        print(render_audit_human(report, verbose=args.verbose))
    return report.exit_code(check_drift=args.check_drift)


def _command_list() -> int:
    print("artefacts   :", ", ".join(ARTEFACTS))
    print("applications:", ", ".join(APP_NAMES))
    print("policies    :", ", ".join(POLICIES))
    print("fault modes :", ", ".join(FAULT_MODES))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "ckpt":
        return _command_ckpt(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "ensemble":
        return _command_ensemble(args)
    if args.command == "lint":
        return _command_lint(args)
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "all":
        return _command_all(args)
    experiment = ARTEFACTS[args.command]
    result = experiment(
        iteration_scale=args.scale, seed=args.seed, engine=_engine_from(args)
    )
    print(result.format_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
