"""Per-core power model (dynamic + leakage) and the energy meter.

The paper measures power with ``likwid-powermeter`` (RAPL); here the
chip's power is produced by the model that drives the thermal network:

* :mod:`repro.power.opp` — the DVFS ladder of voltage/frequency pairs;
* :mod:`repro.power.dynamic` — activity-based switching power
  ``a * C_eff * V^2 * f``;
* :mod:`repro.power.leakage` — exponential temperature-dependent static
  power (the channel through which cooling saves leakage energy, the
  15%/11% numbers at the end of Section 6.5);
* :mod:`repro.power.energy` — the accumulating meter the experiments
  read, playing the role of likwid-powermeter;
* :mod:`repro.power.table` — per-OPP precomputed constants backing the
  chip's allocation-free tick loop.
"""

from repro.power.dynamic import dynamic_power_w
from repro.power.energy import EnergyMeter
from repro.power.leakage import leakage_power_w
from repro.power.opp import OppLadder
from repro.power.table import OppPowerEntry, PowerTable

__all__ = [
    "EnergyMeter",
    "OppLadder",
    "OppPowerEntry",
    "PowerTable",
    "dynamic_power_w",
    "leakage_power_w",
]
