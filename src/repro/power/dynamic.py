"""Dynamic (switching) power of a core.

The canonical CMOS model: ``P_dyn = a * C_eff * V^2 * f`` with activity
factor ``a`` in [0, 1].  With the default configuration a fully active
core at the 3.4 GHz / 1.10 V top operating point dissipates ~7 W, so four
saturated cores plus uncore and leakage land near the ~30 W package power
of Figure 9's hottest bars.
"""

from __future__ import annotations

from repro.config import PowerConfig


def dynamic_power_w(
    activity: float,
    voltage_v: float,
    frequency_hz: float,
    config: PowerConfig,
) -> float:
    """Dynamic power of one core in watts.

    Parameters
    ----------
    activity:
        Switching-activity factor in [0, 1]; 0 for a halted core.
    voltage_v:
        Supply voltage in volts.
    frequency_hz:
        Clock frequency in hertz.
    config:
        Power-model constants.

    Raises
    ------
    ValueError
        If the activity is outside [0, 1] or voltage/frequency are
        non-positive.
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity {activity} outside [0, 1]")
    if voltage_v <= 0.0 or frequency_hz <= 0.0:
        raise ValueError("voltage and frequency must be positive")
    return activity * config.c_eff * voltage_v * voltage_v * frequency_hz
