"""Operating-point (DVFS) ladder helpers.

Wraps the tuple of :class:`repro.config.OperatingPoint` with the lookups
the governors and controllers need: nearest point, neighbours for
step-up/step-down, and frequency <-> voltage mapping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.config import OperatingPoint


class OppLadder:
    """An ordered DVFS ladder.

    Parameters
    ----------
    points:
        Operating points; stored sorted by ascending frequency.
    """

    def __init__(self, points: Sequence[OperatingPoint]) -> None:
        if not points:
            raise ValueError("need at least one operating point")
        self._points: Tuple[OperatingPoint, ...] = tuple(
            sorted(points, key=lambda p: p.frequency_hz)
        )
        frequencies = [p.frequency_hz for p in self._points]
        if len(set(frequencies)) != len(frequencies):
            raise ValueError("duplicate frequencies in the OPP table")

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    @property
    def points(self) -> Tuple[OperatingPoint, ...]:
        """All operating points, ascending by frequency."""
        return self._points

    def frequencies(self) -> List[float]:
        """All frequencies (Hz), ascending."""
        return [p.frequency_hz for p in self._points]

    @property
    def min_point(self) -> OperatingPoint:
        """The lowest operating point."""
        return self._points[0]

    @property
    def max_point(self) -> OperatingPoint:
        """The highest operating point."""
        return self._points[-1]

    def index_of(self, frequency_hz: float) -> int:
        """Index of the point with exactly this frequency.

        Raises
        ------
        KeyError
            If the frequency is not on the ladder.
        """
        for index, point in enumerate(self._points):
            if abs(point.frequency_hz - frequency_hz) < 1.0:
                return index
        raise KeyError(f"{frequency_hz} Hz is not an operating point")

    def at(self, index: int) -> OperatingPoint:
        """The point at a ladder index (clamped to the valid range)."""
        clamped = max(0, min(len(self._points) - 1, index))
        return self._points[clamped]

    def nearest(self, frequency_hz: float) -> OperatingPoint:
        """The point whose frequency is closest to ``frequency_hz``."""
        return min(self._points, key=lambda p: abs(p.frequency_hz - frequency_hz))

    def ceil(self, frequency_hz: float) -> OperatingPoint:
        """The lowest point with frequency >= ``frequency_hz`` (or max)."""
        for point in self._points:
            if point.frequency_hz >= frequency_hz - 1.0:
                return point
        return self.max_point

    def voltage_for(self, frequency_hz: float) -> float:
        """Voltage of the point at exactly this frequency."""
        return self._points[self.index_of(frequency_hz)].voltage_v

    def step(self, frequency_hz: float, delta: int) -> OperatingPoint:
        """The point ``delta`` rungs away from ``frequency_hz`` (clamped)."""
        return self.at(self.index_of(frequency_hz) + delta)
