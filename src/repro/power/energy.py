"""Energy meter — the simulator's ``likwid-powermeter``.

Accumulates dynamic and static energy separately (the paper reports the
two channels separately: 10% dynamic and 11% static savings) and exposes
the average-power views used by Figure 9 and Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass
class EnergyMeter:
    """Accumulating per-chip energy meter.

    All values are chip totals (sum over cores plus uncore).
    """

    dynamic_j: float = 0.0
    static_j: float = 0.0
    elapsed_s: float = 0.0

    def record(
        self,
        dynamic_powers_w: Sequence[float],
        static_powers_w: Sequence[float],
        uncore_power_w: float,
        dt: float,
    ) -> None:
        """Accumulate one tick of consumption.

        Parameters
        ----------
        dynamic_powers_w:
            Per-core dynamic power during the tick.
        static_powers_w:
            Per-core leakage power during the tick.
        uncore_power_w:
            Uncore/package dynamic power (counted as dynamic).
        dt:
            Tick duration in seconds.
        """
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.dynamic_j += (sum(dynamic_powers_w) + uncore_power_w) * dt
        self.static_j += sum(static_powers_w) * dt
        self.elapsed_s += dt

    @property
    def total_j(self) -> float:
        """Total energy (dynamic + static) in joules."""
        return self.dynamic_j + self.static_j

    @property
    def average_dynamic_power_w(self) -> float:
        """Mean dynamic power over the metered interval."""
        if self.elapsed_s == 0.0:
            return 0.0
        return self.dynamic_j / self.elapsed_s

    @property
    def average_static_power_w(self) -> float:
        """Mean static (leakage) power over the metered interval."""
        if self.elapsed_s == 0.0:
            return 0.0
        return self.static_j / self.elapsed_s

    @property
    def average_power_w(self) -> float:
        """Mean total power over the metered interval."""
        if self.elapsed_s == 0.0:
            return 0.0
        return self.total_j / self.elapsed_s

    def snapshot(self) -> "EnergyMeter":
        """A frozen copy of the current totals."""
        return EnergyMeter(self.dynamic_j, self.static_j, self.elapsed_s)

    def since(self, earlier: "EnergyMeter") -> "EnergyMeter":
        """Consumption accumulated since an earlier snapshot."""
        return EnergyMeter(
            dynamic_j=self.dynamic_j - earlier.dynamic_j,
            static_j=self.static_j - earlier.static_j,
            elapsed_s=self.elapsed_s - earlier.elapsed_s,
        )
