"""Static (leakage) power of a core.

Leakage grows exponentially with temperature and roughly linearly with
supply voltage over the small DVFS range; we use the compact form

.. math::

    P_{leak} = k_{leak} \\; V \\; e^{t_{leak} \\, T}

(``T`` in degC), the same family as the model of Ukhov et al. (paper
ref. [17]) which the authors use to estimate their 11-15% leakage-energy
savings.  The positive feedback (hotter -> leakier -> hotter) is captured
because the simulator evaluates leakage at the current RC-model
temperature every tick.
"""

from __future__ import annotations

import math

from repro.config import PowerConfig


def leakage_power_w(temp_c: float, voltage_v: float, config: PowerConfig) -> float:
    """Leakage power of one core in watts.

    Parameters
    ----------
    temp_c:
        Core temperature in degrees Celsius.
    voltage_v:
        Supply voltage in volts.
    config:
        Power-model constants.
    """
    if voltage_v <= 0.0:
        raise ValueError("voltage must be positive")
    return config.k_leak * voltage_v * math.exp(config.t_leak * temp_c)
