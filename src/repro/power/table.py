"""Per-OPP power lookup table for the chip's per-tick hot loop.

Everything about a core's power draw that depends only on the operating
point — the supply voltage, the full-activity dynamic power, and the
voltage-scaled leakage prefactor — is fixed the moment the OPP ladder is
fixed, yet the seed ``Chip.step`` re-derived it every tick for every
core: a linear ``OppLadder.index_of`` scan for the voltage plus the
argument validation inside :func:`~repro.power.dynamic.dynamic_power_w`
and :func:`~repro.power.leakage.leakage_power_w`.  A :class:`PowerTable`
precomputes one :class:`OppPowerEntry` per operating point, keyed by the
exact ladder frequency, so the per-core work becomes one dict lookup and
a handful of scalar multiplies.

Bit-identity contract: the evaluation methods repeat the *exact*
floating-point operation order of the free functions.  In particular the
dynamic-power chain ``a * c_eff * v * v * f`` associates left-to-right,
so it must not be folded into ``a * precomputed_coeff`` — only the
leakage prefactor ``k_leak * v`` (a genuine left-to-right prefix of the
leakage chain) is safe to precompute.  ``dynamic_coeff_w`` equals the
chain at ``a = 1.0`` exactly (multiplying by 1.0 first is an FP no-op)
and is exposed for reporting and tests.
"""

from __future__ import annotations

import math
from typing import Dict, NamedTuple, Tuple

from repro.config import PowerConfig
from repro.power.opp import OppLadder


class OppPowerEntry(NamedTuple):
    """Precomputed power constants of one operating point.

    Attributes
    ----------
    frequency_hz:
        The operating point's clock frequency.
    voltage_v:
        The operating point's supply voltage.
    dynamic_coeff_w:
        Dynamic power at full activity, ``c_eff * v * v * f``; equals
        ``dynamic_power_w(1.0, v, f, config)`` bit-for-bit.
    leakage_scale_w:
        The leakage prefactor ``k_leak * v``; equals
        ``leakage_power_w(0.0, v, config)`` bit-for-bit (``exp(0) = 1``).
    """

    frequency_hz: float
    voltage_v: float
    dynamic_coeff_w: float
    leakage_scale_w: float


class PowerTable:
    """Per-OPP constants for allocation-free power evaluation.

    Parameters
    ----------
    ladder:
        The platform's OPP ladder.
    config:
        Power-model constants.
    """

    def __init__(self, ladder: OppLadder, config: PowerConfig) -> None:
        self.ladder = ladder
        self.config = config
        self.c_eff = config.c_eff
        self.t_leak = config.t_leak
        entries = []
        by_frequency: Dict[float, OppPowerEntry] = {}
        for point in ladder.points:
            voltage = point.voltage_v
            frequency = point.frequency_hz
            if voltage <= 0.0 or frequency <= 0.0:
                raise ValueError("voltage and frequency must be positive")
            entry = OppPowerEntry(
                frequency_hz=frequency,
                voltage_v=voltage,
                dynamic_coeff_w=config.c_eff * voltage * voltage * frequency,
                leakage_scale_w=config.k_leak * voltage,
            )
            entries.append(entry)
            by_frequency[frequency] = entry
        self.entries: Tuple[OppPowerEntry, ...] = tuple(entries)
        self._by_frequency = by_frequency

    def entry_for_hz(self, frequency_hz: float) -> OppPowerEntry:
        """The entry of the operating point at this frequency.

        An exact float match (the common case — governors hand back the
        ladder's own frequencies) is a dict hit; anything else falls back
        to the ladder's tolerant linear scan.

        Raises
        ------
        KeyError
            If the frequency is not on the ladder.
        """
        entry = self._by_frequency.get(frequency_hz)
        if entry is not None:
            return entry
        return self.entries[self.ladder.index_of(frequency_hz)]

    def dynamic_power_w(self, frequency_hz: float, activity: float) -> float:
        """Dynamic power at an operating point, matching the free function.

        The caller's ``frequency_hz`` (not the entry's nominal one) goes
        into the multiply chain, exactly as the seed chip passed it to
        :func:`repro.power.dynamic.dynamic_power_w`.
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity {activity} outside [0, 1]")
        voltage = self.entry_for_hz(frequency_hz).voltage_v
        return activity * self.c_eff * voltage * voltage * frequency_hz

    def leakage_power_w(self, frequency_hz: float, temp_c: float) -> float:
        """Leakage power at an operating point, matching the free function."""
        entry = self.entry_for_hz(frequency_hz)
        return entry.leakage_scale_w * math.exp(self.t_leak * temp_c)
