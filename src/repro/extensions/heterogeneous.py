"""Heterogeneous (big.LITTLE-style) cores.

The paper's second future-work item.  A heterogeneous die has per-core
*speed factors*: a big core retires proportionally more cycles per clock
and switches proportionally more capacitance; a LITTLE core is slower
but cheaper.  The extension is deliberately minimal:

* :func:`heterogeneous_platform` tags a platform with per-core factors;
* :class:`HeterogeneousChip` scales each core's dynamic power by its
  factor;
* :func:`make_heterogeneous_simulation` builds a Simulation whose
  scheduler grants ``factor x frequency`` cycles on each core.

The thermal manager runs unchanged — its affinity actions now
additionally decide *which kind* of core a thread heats.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.config import PlatformConfig
from repro.power.dynamic import dynamic_power_w
from repro.soc.chip import Chip
from repro.soc.simulator import Simulation, ThermalManagerBase
from repro.workloads.application import Application

#: Default big.LITTLE layout for the quad-core: two big, two LITTLE.
DEFAULT_SPEED_FACTORS: Tuple[float, ...] = (1.0, 1.0, 0.6, 0.6)


def heterogeneous_platform(
    speed_factors: Sequence[float] = DEFAULT_SPEED_FACTORS,
    base: Optional[PlatformConfig] = None,
) -> Tuple[PlatformConfig, Tuple[float, ...]]:
    """A platform plus its per-core speed factors.

    Parameters
    ----------
    speed_factors:
        Per-core instruction-throughput multipliers (1.0 = the paper's
        homogeneous core).
    base:
        Platform to derive from (the default quad-core when omitted).

    Returns
    -------
    (platform, factors)
        The platform is unchanged structurally; the factors are applied
        by :class:`HeterogeneousChip` and the simulation factory.
    """
    platform = base if base is not None else PlatformConfig()
    factors = tuple(float(f) for f in speed_factors)
    if len(factors) != platform.num_cores:
        raise ValueError(
            f"need {platform.num_cores} speed factors, got {len(factors)}"
        )
    if any(f <= 0.0 for f in factors):
        raise ValueError("speed factors must be positive")
    return platform, factors


class HeterogeneousChip(Chip):
    """A chip whose cores switch capacitance proportional to their speed.

    Parameters
    ----------
    config:
        Platform configuration.
    speed_factors:
        Per-core throughput multipliers; dynamic power scales with the
        same factor (a big core does more work *and* burns more).
    seed:
        Sensor-noise seed.
    """

    def __init__(
        self,
        config: PlatformConfig,
        speed_factors: Sequence[float],
        seed: int = 0,
    ) -> None:
        super().__init__(config, seed=seed)
        if len(speed_factors) != config.num_cores:
            raise ValueError(f"need {config.num_cores} speed factors")
        self.speed_factors = tuple(float(f) for f in speed_factors)

    def step(self, activities, frequencies_hz, dt):
        """Advance one tick with per-core capacitance scaling."""
        scaled = [
            min(1.0, activities[core]) for core in range(self.num_cores)
        ]
        # Reuse the base implementation but scale the dynamic component
        # by the speed factor via an adjusted activity (power is linear
        # in activity, so this is exact).
        adjusted = [
            min(1.0, scaled[core] * self.speed_factors[core])
            for core in range(self.num_cores)
        ]
        return super().step(adjusted, frequencies_hz, dt)


def make_heterogeneous_simulation(
    applications: Sequence[Application],
    speed_factors: Sequence[float] = DEFAULT_SPEED_FACTORS,
    platform: Optional[PlatformConfig] = None,
    manager: Optional[ThermalManagerBase] = None,
    governor: str = "ondemand",
    seed: int = 0,
    max_time_s: Optional[float] = None,
) -> Simulation:
    """Build a Simulation running on an asymmetric die.

    The scheduler's execution path is wrapped so each core grants
    ``speed_factor x frequency x share`` cycles per tick, and the chip
    is swapped for a :class:`HeterogeneousChip`.
    """
    platform, factors = heterogeneous_platform(speed_factors, platform)
    sim = Simulation(
        applications,
        platform=platform,
        governor=governor,
        manager=manager,
        seed=seed,
        max_time_s=max_time_s,
    )
    sim.chip = HeterogeneousChip(platform, factors, seed=seed)
    if sim.platform.thermal.ambient_c:  # keep the warm-start behaviour
        sim.chip.warm_start_idle()

    original_tick = sim.scheduler.tick

    def scaled_tick(frequencies_hz, dt):
        scaled = [f * factor for f, factor in zip(frequencies_hz, factors)]
        return original_tick(scaled, dt)

    sim.scheduler.tick = scaled_tick  # type: ignore[method-assign]
    return sim
