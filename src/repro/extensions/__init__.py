"""Extensions beyond the paper's evaluation.

The paper closes with: "In future, the approach can be extended to
consider concurrent applications and heterogeneous cores."  This package
implements both:

* :mod:`repro.extensions.concurrent` — run several applications
  *simultaneously* (not back-to-back) under one thermal manager, by
  composing their thread pools into a single schedulable workload;
* :mod:`repro.extensions.heterogeneous` — a big.LITTLE-style platform
  with per-core performance/power scaling, exercising the same manager
  on an asymmetric die.
"""

from repro.extensions.concurrent import CompositeApplication
from repro.extensions.heterogeneous import (
    HeterogeneousChip,
    heterogeneous_platform,
)

__all__ = [
    "CompositeApplication",
    "HeterogeneousChip",
    "heterogeneous_platform",
]
