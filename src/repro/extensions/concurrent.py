"""Concurrent applications: several programs sharing the chip at once.

The paper's evaluation switches applications back-to-back; its stated
future work is *concurrent* applications.  A
:class:`CompositeApplication` bundles several
:class:`~repro.workloads.application.Application` instances into one
schedulable workload: their thread pools are merged (with globally
renumbered thread ids, so affinity mappings address every thread), each
constituent keeps its own barrier/queue coordination, and performance is
reported as the sum of constraint-normalised throughputs — 1.0 per
constituent means "every co-runner meets its constraint".

A composite behaves exactly like a plain application from the
simulator's and the thermal manager's point of view, so the proposed
controller (and every baseline) runs unchanged on multi-programmed
workloads.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.workloads.application import Application, PerformanceMetric
from repro.workloads.thread_model import SimThread, WorkloadSpec


class CompositeApplication:
    """Several applications executing concurrently as one workload.

    Parameters
    ----------
    applications:
        The co-running applications.  Their threads are renumbered into
        one global id space (in constructor order), which is the id
        space affinity mappings see.
    """

    def __init__(self, applications: Sequence[Application]) -> None:
        if not applications:
            raise ValueError("need at least one application")
        self.applications = list(applications)
        self.metric = PerformanceMetric.THROUGHPUT
        next_id = 0
        self._threads: List[SimThread] = []
        for app in self.applications:
            for thread in app.threads:
                thread.thread_id = next_id
                next_id += 1
                self._threads.append(thread)
        total_threads = next_id
        # A synthetic spec describing the composite to the manager: the
        # performance constraint is 1.0 per constituent in normalised
        # units (see throughput()).
        names = "+".join(app.spec.name for app in self.applications)
        datasets = "+".join(app.spec.dataset for app in self.applications)
        base = self.applications[0].spec
        self.spec: WorkloadSpec = replace(
            base,
            name=names,
            dataset=datasets,
            num_threads=total_threads,
            iterations=sum(app.spec.iterations for app in self.applications),
            performance_constraint=float(len(self.applications)),
        )

    # ------------------------------------------------------------------
    # Application interface (what Simulation and managers consume)
    # ------------------------------------------------------------------

    @property
    def threads(self) -> List[SimThread]:
        """All threads of all constituents (globally renumbered)."""
        return self._threads

    @property
    def done(self) -> bool:
        """True once every constituent finished."""
        return all(app.done for app in self.applications)

    @property
    def completed_iterations(self) -> int:
        """Total iterations completed across constituents."""
        return sum(app.completed_iterations for app in self.applications)

    @property
    def elapsed_s(self) -> float:
        """Simulated time since the composite started."""
        return self.applications[0].elapsed_s

    def tick(self, dt: float) -> None:
        """Advance every constituent's coordination state."""
        for app in self.applications:
            app.tick(dt)

    def throughput(self, window_s: Optional[float] = None) -> float:
        """Sum of constraint-normalised throughputs.

        Each constituent contributes ``P_i / Pc_i``; the composite's
        constraint is the number of constituents, so the manager's
        reward sees "all co-runners satisfied" exactly at the
        constraint, just as for a single application.
        """
        total = 0.0
        for app in self.applications:
            constraint = app.spec.performance_constraint
            if constraint > 0.0:
                total += app.throughput(window_s) / constraint
        return total

    def performance_satisfied(self, window_s: Optional[float] = None) -> bool:
        """Whether the aggregate meets the composite constraint."""
        return self.throughput(window_s) >= self.spec.performance_constraint

    def progress_fraction(self) -> float:
        """Mean progress across constituents, in [0, 1]."""
        return sum(app.progress_fraction() for app in self.applications) / len(
            self.applications
        )

    def per_app_records(self) -> List[Tuple[str, int, bool]]:
        """(name, completed iterations, done) per constituent."""
        return [
            (app.spec.name, app.completed_iterations, app.done)
            for app in self.applications
        ]
