"""Lumped RC thermal network with an exact discrete-time propagator.

The network state is the vector of node temperatures ``T`` (cores then
spreader) obeying

.. math::

    C \\, \\dot{T} = P_{ext} + g_{amb} T_{amb} e_{spr} - G T

a linear ODE with constant matrices.  For a fixed simulation tick the
solution under piecewise-constant power is

.. math::

    T^{+} = A_d T + S (P_{ext} + g_{amb} T_{amb} e_{spr})

with ``A_d = exp(M dt)``, ``S = M^{-1} (A_d - I) N``, ``M = -C^{-1} G``
and ``N = C^{-1}``.  Both matrices are precomputed once, so a step is a
5x5 matrix-vector product: unconditionally stable and exact regardless
of the tick length (important because the experiments sweep sampling
intervals up to 10 s).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.linalg import expm

from repro.config import ThermalConfig
from repro.thermal.floorplan import Floorplan


class RCThermalModel:
    """Discrete-time integrator of the die's RC thermal network.

    Parameters
    ----------
    floorplan:
        Die topology.
    config:
        RC parameters (conductances, capacitances, ambient).
    dt:
        Simulation tick in seconds used to precompute the propagator.
    initial_temps_c:
        Optional initial node temperatures; defaults to ambient
        everywhere (a cold start).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        config: ThermalConfig,
        dt: float,
        initial_temps_c: Optional[Sequence[float]] = None,
    ) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.floorplan = floorplan
        self.config = config
        self.dt = dt
        self._num_nodes = floorplan.num_cores + 1

        g = floorplan.conductance_matrix(config)
        caps = floorplan.capacitance_vector(config)
        self._ambient_unit = floorplan.ambient_vector(config)
        self._ambient_c = config.ambient_c
        self._ambient_injection = self._ambient_unit * config.ambient_c

        inv_c = np.diag(1.0 / caps)
        m = -inv_c @ g
        self._propagator = expm(m * dt)
        # S = M^{-1} (A_d - I) C^{-1}; M is invertible because the network
        # is grounded through the ambient leg.
        self._input_matrix = np.linalg.solve(
            m, (self._propagator - np.eye(self._num_nodes)) @ inv_c
        )
        self._g = g

        if initial_temps_c is None:
            self._temps = np.full(self._num_nodes, config.ambient_c, dtype=float)
        else:
            temps = np.asarray(initial_temps_c, dtype=float)
            if temps.shape != (self._num_nodes,):
                raise ValueError(
                    f"initial temperatures must have {self._num_nodes} entries"
                )
            self._temps = temps.copy()

        # Scratch buffers of the per-tick fast path (_step_into): the
        # injection vector and the two matrix-vector products.  They are
        # reused every tick so a step allocates nothing.
        self._injection = np.empty(self._num_nodes, dtype=float)
        self._mv_state = np.empty(self._num_nodes, dtype=float)
        self._mv_input = np.empty(self._num_nodes, dtype=float)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def num_cores(self) -> int:
        """Number of core nodes."""
        return self.floorplan.num_cores

    def core_temps_c(self) -> np.ndarray:
        """Current true core temperatures in degrees Celsius."""
        return self._temps[: self.num_cores].copy()

    def spreader_temp_c(self) -> float:
        """Current heat-spreader temperature in degrees Celsius."""
        return float(self._temps[-1])

    def node_temps_c(self) -> np.ndarray:
        """All node temperatures (cores then spreader)."""
        return self._temps.copy()

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def step(
        self, core_powers_w: Sequence[float], spreader_power_w: float = 0.0
    ) -> np.ndarray:
        """Advance one tick under the given power draw.

        Parameters
        ----------
        core_powers_w:
            Heat dissipated by each core during the tick, in watts
            (assumed constant over the tick).
        spreader_power_w:
            Uncore/package heat injected directly into the spreader node.

        Returns
        -------
        numpy.ndarray
            The new core temperatures in degrees Celsius.
        """
        powers = np.asarray(core_powers_w, dtype=float)
        if powers.shape != (self.num_cores,):
            raise ValueError(f"expected {self.num_cores} core powers")
        if np.any(powers < 0.0) or spreader_power_w < 0.0:
            raise ValueError("power cannot be negative")
        self._step_into(powers, spreader_power_w)
        return self.core_temps_c()

    def _step_into(self, core_powers_w, spreader_power_w: float) -> None:
        """Unchecked in-place tick: the hot path behind :meth:`step`.

        Advances ``_temps`` exactly as ``step`` does — same matrices,
        same operation order — but writes into preallocated scratch
        buffers instead of concatenating/allocating, and performs no
        argument validation.  ``core_powers_w`` may be any length-matched
        sequence (the chip passes a plain list).  Callers other than
        :meth:`step` (i.e. :meth:`repro.soc.chip.Chip.step`) are
        responsible for non-negative, correctly-sized inputs.

        ``A @ x`` on a 2-D/1-D pair *is* ``np.matmul``, so routing the
        two products through ``np.matmul(..., out=...)`` reproduces the
        seed's ``propagator @ temps + input_matrix @ injection``
        bit-for-bit while reusing the output buffers.
        """
        injection = self._injection
        injection[:-1] = core_powers_w
        injection[-1] = spreader_power_w
        injection += self._ambient_injection
        np.matmul(self._propagator, self._temps, out=self._mv_state)
        np.matmul(self._input_matrix, injection, out=self._mv_input)
        np.add(self._mv_state, self._mv_input, out=self._temps)

    def steady_state(
        self, core_powers_w: Sequence[float], spreader_power_w: float = 0.0
    ) -> np.ndarray:
        """Steady-state node temperatures under constant power.

        Solves ``G T = P + ambient`` directly; used by tests and by the
        warm-start option of the simulator.
        """
        powers = np.asarray(core_powers_w, dtype=float)
        injection = np.concatenate([powers, [spreader_power_w]]) + self._ambient_injection
        return np.linalg.solve(self._g, injection)

    def set_ambient_c(self, ambient_c: float) -> None:
        """Update the effective ambient temperature (airflow drift)."""
        self._ambient_c = ambient_c
        self._ambient_injection = self._ambient_unit * ambient_c

    @property
    def ambient_c(self) -> float:
        """The current effective ambient temperature."""
        return self._ambient_c

    def set_state(self, temps_c: Sequence[float]) -> None:
        """Overwrite the node temperatures (cores then spreader)."""
        temps = np.asarray(temps_c, dtype=float)
        if temps.shape != (self._num_nodes,):
            raise ValueError(f"state must have {self._num_nodes} entries")
        self._temps = temps.copy()

    def warm_start(
        self, core_powers_w: Sequence[float], spreader_power_w: float = 0.0
    ) -> None:
        """Jump directly to the steady state for the given power draw."""
        self._temps = self.steady_state(core_powers_w, spreader_power_w)
