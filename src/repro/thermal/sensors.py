"""On-board digital thermal sensor model.

The controllers never see the true RC-model temperatures; they see what a
Linux ``coretemp`` driver would report: per-core readings quantised to
1 degC with a little measurement noise, refreshed at the configured
sampling interval.  This is the layer that makes the sampling-interval
study of Figure 6 meaningful — coarse sampling loses cycling information
even though the underlying silicon keeps cycling.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import SensorConfig


class SensorBank:
    """Per-core digital thermal sensors.

    Parameters
    ----------
    num_cores:
        Number of sensors (one per core).
    config:
        Quantisation/noise/saturation parameters.
    seed:
        Seed of the sensor-noise RNG, so any run is reproducible.
    """

    def __init__(
        self,
        num_cores: int,
        config: SensorConfig,
        seed: int = 0,
        sample_period_s: float = 1.0,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one sensor")
        self.num_cores = num_cores
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._ema: np.ndarray | None = None
        if config.ema_tau_s > 0.0:
            self._ema_alpha = 1.0 - np.exp(-sample_period_s / config.ema_tau_s)
        else:
            self._ema_alpha = 1.0

    def reset(self) -> None:
        """Clear the reading-path filter state (the EMA history).

        Call between back-to-back runs that reuse a bank so no filtered
        temperature from a previous run leaks into the next one.  The
        noise RNG is deliberately left untouched: resetting it would
        make two consecutive runs correlated instead of independent.
        """
        self._ema = None

    def read(self, true_temps_c: Sequence[float]) -> np.ndarray:
        """Produce one sensor reading per core.

        Parameters
        ----------
        true_temps_c:
            The true core temperatures from the RC model.

        Returns
        -------
        numpy.ndarray
            Quantised, noisy, saturated readings in degrees Celsius.
        """
        temps = np.asarray(true_temps_c, dtype=float)
        if temps.shape != (self.num_cores,):
            raise ValueError(f"expected {self.num_cores} temperatures")
        config = self.config
        # One fresh buffer per call (the caller keeps the reading); every
        # later stage mutates it in place.  Each in-place ufunc performs
        # the same elementwise operation as the seed's allocating
        # expression, so readings are bit-identical.
        if config.ema_tau_s > 0.0:
            if self._ema is None:
                self._ema = temps.copy()
            else:
                self._ema = self._ema + self._ema_alpha * (temps - self._ema)
            readings = self._ema.copy()
        else:
            readings = temps.copy()
        if config.noise_std_c > 0.0:
            readings += self._rng.normal(0.0, config.noise_std_c, size=self.num_cores)
        if config.quantisation_c > 0.0:
            step = config.quantisation_c
            readings /= step
            np.round(readings, out=readings)
            readings *= step
        return np.clip(readings, config.min_c, config.max_c, out=readings)
