"""Die floorplan: which cores are thermally adjacent.

The default quad-core is laid out as a 2x2 grid (cores 0-1 on the top
row, 2-3 on the bottom), so each core has two lateral neighbours.  The
floorplan's job is to turn that adjacency plus the per-interface
conductances into the conductance matrix the RC model integrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.config import ThermalConfig


@dataclass(frozen=True)
class Floorplan:
    """Thermal topology of the die.

    Attributes
    ----------
    num_cores:
        Number of core nodes.
    adjacency:
        Pairs of core indices that share a lateral thermal interface.
    """

    num_cores: int
    adjacency: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for a, b in self.adjacency:
            if not (0 <= a < self.num_cores and 0 <= b < self.num_cores):
                raise ValueError(f"adjacency ({a}, {b}) outside 0..{self.num_cores - 1}")
            if a == b:
                raise ValueError("a core cannot be adjacent to itself")

    @classmethod
    def grid_2x2(cls) -> "Floorplan":
        """The default 2x2 quad-core floorplan."""
        return cls(num_cores=4, adjacency=((0, 1), (0, 2), (1, 3), (2, 3)))

    @classmethod
    def line(cls, num_cores: int) -> "Floorplan":
        """A 1-D row of cores (used for what-if floorplan tests)."""
        pairs = tuple((i, i + 1) for i in range(num_cores - 1))
        return cls(num_cores=num_cores, adjacency=pairs)

    def neighbours(self, core: int) -> Tuple[int, ...]:
        """Indices of the cores laterally adjacent to ``core``."""
        result = []
        for a, b in self.adjacency:
            if a == core:
                result.append(b)
            elif b == core:
                result.append(a)
        return tuple(sorted(result))

    def conductance_matrix(self, config: ThermalConfig) -> np.ndarray:
        """Build the (N+1)x(N+1) conductance Laplacian ``G``.

        Node ``N`` is the heat spreader.  ``G`` is constructed so that the
        heat-flow equation reads ``C dT/dt = P_ext - G T - g_amb e_N *
        (-Tamb)`` i.e. ``G`` contains the ambient leg on the spreader's
        diagonal; the ambient injection vector is supplied separately by
        :meth:`ambient_vector`.

        Returns
        -------
        numpy.ndarray
            Symmetric positive-definite conductance matrix in W/K.
        """
        n = self.num_cores
        g = np.zeros((n + 1, n + 1))
        # Core <-> spreader legs.
        for i in range(n):
            g[i, i] += config.core_to_spreader
            g[n, n] += config.core_to_spreader
            g[i, n] -= config.core_to_spreader
            g[n, i] -= config.core_to_spreader
        # Core <-> core lateral legs.
        for a, b in self.adjacency:
            g[a, a] += config.core_to_core
            g[b, b] += config.core_to_core
            g[a, b] -= config.core_to_core
            g[b, a] -= config.core_to_core
        # Spreader <-> ambient leg (grounds the network).
        g[n, n] += config.spreader_to_ambient
        return g

    def ambient_vector(self, config: ThermalConfig) -> np.ndarray:
        """Heat injected per node by the ambient at 1 K (W/K units)."""
        vec = np.zeros(self.num_cores + 1)
        vec[self.num_cores] = config.spreader_to_ambient
        return vec

    def capacitance_vector(self, config: ThermalConfig) -> np.ndarray:
        """Per-node heat capacities in J/K (cores then spreader)."""
        caps = np.full(self.num_cores + 1, config.core_capacitance)
        caps[self.num_cores] = config.spreader_capacitance
        return caps
