"""Thermal profile container and summary statistics.

A :class:`ThermalProfile` is the time-ordered record of per-core sensor
samples produced by one simulation run.  Every experiment metric of the
paper's evaluation (average temperature, peak temperature, thermal
cycling, stress, aging) is computed from objects of this class.

Samples live in one growable ``(num_cores, capacity)`` float array
(amortised-O(1) appends, no per-core Python lists), matching the memory
layout ``np.array(list_of_core_lists)`` used to produce — so every
statistic reduces over bit-identical, identically-strided data and
:meth:`as_array` returns the same ``(num_samples, num_cores)`` view of a
C-contiguous ``(num_cores, num_samples)`` block the seed returned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ReliabilityConfig
from repro.reliability.mttf import MttfReport, evaluate_profile

#: Initial column capacity of a profile's sample block.
_INITIAL_CAPACITY = 64


class ThermalProfile:
    """Per-core temperature traces sampled at a uniform period.

    Parameters
    ----------
    num_cores:
        Number of cores being traced.
    sample_period_s:
        Spacing of the samples in seconds.
    """

    def __init__(self, num_cores: int, sample_period_s: float) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        if sample_period_s <= 0.0:
            raise ValueError("sample period must be positive")
        self.num_cores = num_cores
        self.sample_period_s = sample_period_s
        self._data = np.empty((num_cores, _INITIAL_CAPACITY), dtype=float)
        self._len = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        """Grow the sample block so ``extra`` more columns fit."""
        needed = self._len + extra
        capacity = self._data.shape[1]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity = max(_INITIAL_CAPACITY, capacity * 2)
        grown = np.empty((self.num_cores, capacity), dtype=float)
        grown[:, : self._len] = self._data[:, : self._len]
        self._data = grown

    def append(self, temps_c: Sequence[float]) -> None:
        """Record one sample per core."""
        if len(temps_c) != self.num_cores:
            raise ValueError(f"expected {self.num_cores} samples")
        length = self._len
        if length == self._data.shape[1]:
            self._reserve(1)
        self._data[:, length] = temps_c
        self._len = length + 1

    def extend(self, other: "ThermalProfile") -> None:
        """Append another profile recorded with the same period."""
        if other.num_cores != self.num_cores:
            raise ValueError("core-count mismatch")
        if abs(other.sample_period_s - self.sample_period_s) > 1e-12:
            raise ValueError("sample-period mismatch")
        added = other._len
        self._reserve(added)
        self._data[:, self._len : self._len + added] = other._data[:, :added]
        self._len += added

    def _adopt(self, block: np.ndarray) -> None:
        """Replace this (empty) profile's samples with a copied block."""
        self._data = np.ascontiguousarray(block, dtype=float)
        self._len = block.shape[1]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of samples recorded per core."""
        return self._len

    @property
    def duration_s(self) -> float:
        """Wall-clock time represented by the profile."""
        return len(self) * self.sample_period_s

    def core_series(self, core: int) -> List[float]:
        """The sample list of one core (a copy)."""
        return self._data[core, : self._len].tolist()

    def as_array(self) -> np.ndarray:
        """All samples as a ``(num_samples, num_cores)`` array."""
        return np.ascontiguousarray(self._data[:, : self._len]).T

    def tail(self, num_samples: int) -> "ThermalProfile":
        """A new profile holding only the last ``num_samples`` samples."""
        clipped = ThermalProfile(self.num_cores, self.sample_period_s)
        clipped._adopt(self._data[:, : self._len][:, -num_samples:])
        return clipped

    def window(self, start_s: float, end_s: Optional[float] = None) -> "ThermalProfile":
        """A new profile restricted to ``[start_s, end_s)`` of the run.

        Sample ``k`` is taken to represent time ``(k + 1) *
        sample_period_s`` (samples are recorded at the end of each
        period).
        """
        if end_s is None:
            end_s = self.duration_s
        if start_s < 0.0 or end_s < start_s:
            raise ValueError("need 0 <= start_s <= end_s")
        first = max(0, int(start_s / self.sample_period_s))
        last = min(len(self), int(end_s / self.sample_period_s))
        clipped = ThermalProfile(self.num_cores, self.sample_period_s)
        clipped._adopt(self._data[:, first:last])
        return clipped

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def average_temp_c(self) -> float:
        """Mean temperature across all cores and samples."""
        if not len(self):
            raise ValueError("empty profile")
        return float(np.mean(self.as_array()))

    def peak_temp_c(self) -> float:
        """Maximum temperature across all cores and samples."""
        if not len(self):
            raise ValueError("empty profile")
        return float(np.max(self.as_array()))

    def per_core_average_c(self) -> List[float]:
        """Mean temperature of each core."""
        return [
            float(np.mean(self._data[core, : self._len]))
            for core in range(self.num_cores)
        ]

    def per_core_peak_c(self) -> List[float]:
        """Peak temperature of each core."""
        return [
            float(np.max(self._data[core, : self._len]))
            for core in range(self.num_cores)
        ]

    def core_reports(self, config: ReliabilityConfig) -> List[MttfReport]:
        """Per-core reliability reports (aging + cycling MTTF)."""
        return [
            evaluate_profile(
                self._data[core, : self._len].tolist(), self.sample_period_s, config
            )
            for core in range(self.num_cores)
        ]

    def worst_case_report(self, config: ReliabilityConfig) -> Dict[str, float]:
        """Chip-level summary: worst core per reliability channel.

        The paper reports a single MTTF per run; a chip fails when its
        first core fails, so the chip MTTF per channel is the minimum
        across cores.  Average/peak temperature are the cross-core mean
        and max, matching how Table 2 reports them.
        """
        reports = self.core_reports(config)
        return {
            "average_temp_c": self.average_temp_c(),
            "peak_temp_c": self.peak_temp_c(),
            "aging_mttf_years": min(r.aging_mttf_years for r in reports),
            "cycling_mttf_years": min(r.cycling_mttf_years for r in reports),
            "stress": max(r.stress for r in reports),
            "num_cycles": max(r.num_cycles for r in reports),
        }
