"""Compact thermal model of the quad-core die.

The paper samples on-board thermal sensors of a real Intel quad-core; we
replace the silicon with a lumped RC network (the same compact-model
family as HotSpot, which the paper's related work uses for offline
validation) plus a digital-sensor front end:

* :mod:`repro.thermal.floorplan` — die layout and conductance graph;
* :mod:`repro.thermal.rc_model` — the ODE ``C dT/dt = P - G(T - Tamb)``
  advanced with an exact matrix-exponential propagator;
* :mod:`repro.thermal.sensors` — quantised, noisy, periodically sampled
  sensor readings (the only thermal view the controllers get);
* :mod:`repro.thermal.profile` — trace container with the summary
  statistics the experiments report.
"""

from repro.thermal.floorplan import Floorplan
from repro.thermal.profile import ThermalProfile
from repro.thermal.rc_model import RCThermalModel
from repro.thermal.sensors import SensorBank

__all__ = ["Floorplan", "RCThermalModel", "SensorBank", "ThermalProfile"]
