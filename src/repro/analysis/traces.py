"""ASCII rendering of thermal traces.

The paper's Figures 1, 4 and 5 are temperature-vs-time plots.  The
benchmark harness runs in a terminal, so this module renders a
:class:`~repro.thermal.profile.ThermalProfile` as a compact ASCII chart
(one row per temperature band, one column per time bucket) — enough to
see the qualitative shapes: face_rec's plateau, mpeg's comb of GOP
bursts, the exploration chaos vs the exploitation flat-line.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.thermal.profile import ThermalProfile

#: Glyph drawn for cells the trace passes through.
_MARK = "#"


def render_series(
    series: Sequence[float],
    width: int = 72,
    height: int = 12,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Render one temperature series as an ASCII chart.

    Parameters
    ----------
    series:
        Temperature samples in degrees Celsius.
    width:
        Chart width in character columns; samples are bucketed.
    height:
        Chart height in rows.
    t_min / t_max:
        Fixed temperature axis (auto-scaled when omitted) — pass the
        same limits to make two charts comparable.
    title:
        Optional title line.
    """
    values = np.asarray(list(series), dtype=float)
    if values.size == 0:
        raise ValueError("empty series")
    lo = float(values.min()) if t_min is None else t_min
    hi = float(values.max()) if t_max is None else t_max
    if hi <= lo:
        hi = lo + 1.0

    # Bucket samples into columns (min/max band per bucket).
    buckets = np.array_split(values, min(width, values.size))
    grid = [[" "] * len(buckets) for _ in range(height)]
    for col, bucket in enumerate(buckets):
        b_lo = (float(bucket.min()) - lo) / (hi - lo)
        b_hi = (float(bucket.max()) - lo) / (hi - lo)
        row_lo = int(np.clip(b_lo * (height - 1), 0, height - 1))
        row_hi = int(np.clip(b_hi * (height - 1), 0, height - 1))
        for row in range(row_lo, row_hi + 1):
            grid[height - 1 - row][col] = _MARK

    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{hi:5.1f}C "
        elif index == height - 1:
            label = f"{lo:5.1f}C "
        else:
            label = " " * 7
        lines.append(label + "|" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * len(buckets))
    return "\n".join(lines)


def render_profile(
    profile: ThermalProfile,
    core: Optional[int] = None,
    width: int = 72,
    height: int = 12,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Render a profile (one core, or the hottest-core envelope).

    Parameters
    ----------
    profile:
        The recorded thermal profile.
    core:
        Core index to plot; when omitted, each sample plots the maximum
        across cores (the envelope the reliability models care about).
    """
    if core is not None:
        series = profile.core_series(core)
    else:
        series = profile.as_array().max(axis=1).tolist()
    return render_series(
        series, width=width, height=height, t_min=t_min, t_max=t_max, title=title
    )
