"""Plain-text table rendering for experiment output.

Every benchmark prints its rows with this renderer so the console output
is directly comparable with the paper's tables and figure series.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row cells; floats are formatted with ``float_format``, everything
        else with ``str``.
    title:
        Optional title line printed above the table.
    float_format:
        Format spec applied to float cells.
    """
    rendered: List[List[str]] = []
    for row in rows:
        cells: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        if len(cells) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for cells in rendered:
        lines.append(" | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(lines)
