"""Small numeric helpers used when assembling experiment tables."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def normalise_to(values: Dict[str, float], reference_key: str) -> Dict[str, float]:
    """Normalise a dict of values by one entry (e.g. the Linux baseline).

    Parameters
    ----------
    values:
        Metric per policy.
    reference_key:
        The policy whose value becomes 1.0.

    Raises
    ------
    KeyError
        If the reference key is missing.
    ValueError
        If the reference value is zero.
    """
    reference = values[reference_key]
    if reference == 0.0:
        raise ValueError("cannot normalise by a zero reference")
    return {key: value / reference for key, value in values.items()}


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (ratios across workloads)."""
    values = list(values)
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0.0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean."""
    values = list(values)
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)
