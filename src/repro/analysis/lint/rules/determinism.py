"""DET001/DET002: the bit-identical-run invariants.

The reproduction's headline guarantee is that a fault-free run is
bit-identical across processes, machines and sweep parallelism.  Two
statically checkable preconditions back it:

* **DET001** — the decision-loop packages (``core``, ``soc``, ``sched``,
  ``reliability``, ``checkpoint``) draw no entropy from outside the
  seeded RNG streams: no wall clocks, no stdlib ``random``, no unseeded
  numpy generators, no ``os.urandom``, no environment reads.
* **DET002** — the content-addressed experiment engine and the run
  manifest never iterate sets or unordered dict views on paths that
  feed hashing, caching or result folding; every such loop goes through
  ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import Rule, RuleMeta, register

#: Packages whose modules must be entropy-free (dotted-prefix match).
DETERMINISTIC_PACKAGES: Tuple[str, ...] = (
    "repro.core",
    "repro.soc",
    "repro.sched",
    "repro.reliability",
    "repro.checkpoint",
    "repro.ensemble",
    # The planner derives job orderings that feed content addressing,
    # and the audit derives the closure digest those addresses embed —
    # both must be as entropy-free as the decision loop itself.
    "repro.experiments.engine.planner",
    "repro.analysis.audit",
)

#: Exact canonical names that are nondeterminism sources.
_BANNED_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "os.urandom",
        "os.getenv",
        "os.getenvb",
        "uuid.uuid1",
        "uuid.uuid4",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.seed",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.normal",
        "numpy.random.uniform",
        "numpy.random.standard_normal",
    }
)

#: Canonical prefixes that are nondeterminism sources in their entirety.
_BANNED_PREFIXES: Tuple[str, ...] = ("random.", "secrets.", "os.environ")

#: Module imports that are banned outright in deterministic packages.
_BANNED_IMPORTS = frozenset({"random", "secrets"})


def _in_packages(module: str, packages: Tuple[str, ...]) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


def _is_banned(qualified: str) -> bool:
    if qualified in _BANNED_NAMES:
        return True
    return any(qualified.startswith(prefix) for prefix in _BANNED_PREFIXES)


@register
class NoEntropySources(Rule):
    """DET001: decision-loop code draws randomness only from seeded RNGs."""

    meta = RuleMeta(
        code="DET001",
        name="no nondeterminism sources in the decision loop",
        severity=Severity.ERROR,
        rationale=(
            "core/, soc/, sched/ and reliability/ must be bit-identical "
            "given a seed: no wall clocks, stdlib random, unseeded numpy "
            "generators, os.urandom or environment reads"
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_packages(ctx.module, DETERMINISTIC_PACKAGES):
            return
        # Attribute chains already reported as part of a call, so the
        # walk does not double-flag `time.time()` at both the Call and
        # the Attribute node (ast.walk visits parents before children).
        handled: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name.split(".")[0] in _BANNED_IMPORTS:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of entropy module {item.name!r} in a "
                            "deterministic package",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in _BANNED_IMPORTS:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from entropy module {node.module!r} in a "
                        "deterministic package",
                    )
            elif isinstance(node, ast.Call):
                qualified = ctx.qualified_name(node.func)
                flagged = False
                if qualified == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    flagged = True
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.random.default_rng() without a seed is "
                        "entropy-seeded; pass an explicit seed",
                    )
                elif qualified is not None and _is_banned(qualified):
                    flagged = True
                    yield self.finding(
                        ctx,
                        node,
                        f"call to nondeterminism source {qualified!r}",
                    )
                if flagged:
                    chain = node.func
                    while isinstance(chain, ast.Attribute):
                        handled.add(id(chain))
                        chain = chain.value
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if id(node) in handled:
                    chain = node.value
                    while isinstance(chain, ast.Attribute):
                        handled.add(id(chain))
                        chain = chain.value
                    continue
                qualified = ctx.qualified_name(node)
                if qualified is not None and _is_banned(qualified):
                    yield self.finding(
                        ctx,
                        node,
                        f"use of nondeterminism source {qualified!r}",
                    )
                    chain = node.value
                    while isinstance(chain, ast.Attribute):
                        handled.add(id(chain))
                        chain = chain.value


#: Modules whose loops feed hashing/caching/result folding.
ORDER_SENSITIVE_MODULES: Tuple[str, ...] = (
    "repro.experiments.engine",
    "repro.obs.manifest",
    # Fingerprints and the closure digest are content addresses: any
    # unordered fold here would make `repro audit` itself flaky.
    "repro.analysis.audit",
)

_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _unordered_iterable(node: ast.expr) -> str:
    """Why ``node`` is an unordered iterable, or '' when it is fine."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "iteration over a set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return f"iteration over {node.func.id}(...)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
        ):
            return f"iteration over unsorted .{node.func.attr}()"
    return ""


@register
class OrderedFoldsOnly(Rule):
    """DET002: hashing/caching/result-folding paths iterate sorted."""

    meta = RuleMeta(
        code="DET002",
        name="no unordered iteration on hashing/caching paths",
        severity=Severity.ERROR,
        rationale=(
            "the experiment engine's content addresses and the run "
            "manifest's digests must not depend on set order or dict "
            "insertion history; iterate sorted(...) instead"
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_packages(ctx.module, ORDER_SENSITIVE_MODULES):
            return
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                why = _unordered_iterable(candidate)
                if why:
                    yield self.finding(
                        ctx,
                        candidate,
                        f"{why} on an order-sensitive path; wrap the "
                        "iterable in sorted(...)",
                    )
