"""CFG001: every config dataclass field has a validation branch.

``repro.config`` is the single place every tunable of the platform, the
reliability models and the agent lives; an invalid value that slips
through surfaces hundreds of ticks later as NaN temperatures or a
silently wrong sweep (PR 1 hardened exactly such a path).  The rule
requires each dataclass field in ``repro.config`` to be *covered* by
``__post_init__``: the field name must appear there either as a
``self.<field>`` access or as a string literal (the ``getattr`` loop
idiom ``for name in ("a", "b"): _check(getattr(self, name))``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import Rule, RuleMeta, register

#: The module whose dataclasses the rule audits.
CONFIG_MODULE = "repro.config"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _field_definitions(node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    """(name, node) of every dataclass field declared on the class body."""
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.dump(statement.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        fields.append((statement.target.id, statement))
    return fields


def _post_init(node: ast.ClassDef) -> Optional[ast.FunctionDef]:
    for statement in node.body:
        if (
            isinstance(statement, ast.FunctionDef)
            and statement.name == "__post_init__"
        ):
            return statement
    return None


def _covered_names(post_init: ast.FunctionDef) -> Set[str]:
    """Field names referenced by the validation code."""
    covered: Set[str] = set()
    for node in ast.walk(post_init):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            covered.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            covered.add(node.value)
    return covered


@register
class ConfigValidationCoverage(Rule):
    """CFG001: config dataclass fields are all validated."""

    meta = RuleMeta(
        code="CFG001",
        name="config fields all have validation branches",
        severity=Severity.ERROR,
        rationale=(
            "an unvalidated tunable in repro.config fails hundreds of "
            "ticks downstream (NaN temperatures, silently wrong sweeps); "
            "__post_init__ must reference every field"
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module != CONFIG_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            fields = _field_definitions(node)
            if not fields:
                continue
            post_init = _post_init(node)
            covered = _covered_names(post_init) if post_init else set()
            for name, definition in fields:
                if name in covered:
                    continue
                if post_init is None:
                    message = (
                        f"dataclass {node.name} has no __post_init__; "
                        f"field {name!r} is never validated"
                    )
                else:
                    message = (
                        f"field {name!r} of {node.name} has no validation "
                        "branch in __post_init__"
                    )
                yield self.finding(ctx, definition, message)
