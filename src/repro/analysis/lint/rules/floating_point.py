"""FP001: exact FP operation order on the tick-loop fast path.

The PR-3 fast path is bit-identical to the seed implementation *because*
every float reduction preserves the reference's exact left-to-right
operation order (the scheduler even starts its accumulator as int 0 to
mirror ``sum()`` bit for bit).  The two easiest ways to silently break
that are swapping a reduction for ``math.fsum`` (compensated — a
different rounding) or "vectorising" a ``sum()`` over a generator into
``np.sum`` (pairwise — a different association).  The rule flags every
reassociation-prone reduction in the fast-path modules so each one is
either rewritten with explicit order or carries a reasoned noqa.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import Rule, RuleMeta, register

#: The PR-3 fast-path modules where exact FP op order is load-bearing.
FAST_PATH_MODULES: Tuple[str, ...] = (
    "repro.sched.scheduler",
    "repro.sched.governors",
    "repro.soc.chip",
    "repro.soc.simulator",
    "repro.thermal.rc_model",
    "repro.thermal.profile",
    "repro.power.table",
    "repro.power.energy",
    "repro.workloads.application",
    "repro.ensemble.sched",
    "repro.ensemble.governors",
    "repro.ensemble.workloads",
    "repro.ensemble.power_thermal",
    "repro.ensemble.engine",
    "repro.ensemble.agents",
    "repro.ensemble.managers",
    "repro.ensemble.shard",
)


@register
class ExactFloatReductions(Rule):
    """FP001: no reassociation-prone reductions on the fast path."""

    meta = RuleMeta(
        code="FP001",
        name="exact FP op order on the fast path",
        severity=Severity.WARNING,
        rationale=(
            "fast-path results are bit-compared against the seed "
            "implementation; sum() over a generator invites a later swap "
            "to a reassociating reduction, and math.fsum rounds "
            "differently from a left-to-right sum"
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module not in FAST_PATH_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
                and isinstance(node.args[0], ast.GeneratorExp)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "sum() over a generator on the fast path: materialise "
                    "the operand order explicitly (or noqa with the reason "
                    "the reduction is order-insensitive)",
                )
                continue
            qualified = ctx.qualified_name(node.func)
            if qualified == "math.fsum":
                yield self.finding(
                    ctx,
                    node,
                    "math.fsum is a compensated sum and does not reproduce "
                    "the seed's left-to-right rounding; use a plain ordered "
                    "reduction on the fast path",
                )
