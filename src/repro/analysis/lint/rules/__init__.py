"""The opening ruleset.

Importing this package registers every rule with
:mod:`repro.analysis.lint.registry`.  To add a rule: write a
:class:`~repro.analysis.lint.registry.Rule` subclass in one of these
modules (or a new one), decorate it with ``@register``, and import the
module here.
"""

from repro.analysis.lint.rules import (  # noqa: F401  (registration imports)
    api_hygiene,
    config_coverage,
    determinism,
    floating_point,
    observation,
)
