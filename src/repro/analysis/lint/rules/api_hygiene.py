"""API001: public-API hygiene — no mutable defaults, no bare excepts.

Two classic Python footguns with outsized blast radius in a determinism
contract: a mutable default argument is shared *across calls* (state
leaks between runs that must be independent), and a bare ``except:``
swallows ``KeyboardInterrupt``/``SystemExit`` and hides the very
failures the fault-injection layer exists to surface.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import Rule, RuleMeta, register

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@register
class ApiHygiene(Rule):
    """API001: no mutable defaults on public functions, no bare excepts."""

    meta = RuleMeta(
        code="API001",
        name="no mutable default arguments or bare excepts",
        severity=Severity.ERROR,
        rationale=(
            "a mutable default is shared across calls (state leaking "
            "between runs that must be independent); a bare except "
            "swallows KeyboardInterrupt/SystemExit and masks injected "
            "faults"
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                defaults: List[ast.expr] = list(node.args.defaults)
                defaults.extend(
                    d for d in node.args.kw_defaults if d is not None
                )
                for default in defaults:
                    if _is_mutable_default(default):
                        yield self.finding(
                            ctx,
                            default,
                            f"public function {node.name!r} has a mutable "
                            "default argument; default to None and build "
                            "the container in the body",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit; "
                    "name the exception types this handler expects",
                )
