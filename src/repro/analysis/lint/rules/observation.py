"""OBS001: the observation-only contract of the obs layer.

``repro.obs`` exists to *watch* the simulation — an instrumented run
must be tick-for-tick identical to an uninstrumented one
(``tests/test_obs_identity.py`` checks this at runtime).  Statically,
that means obs code may never assign to attributes of the objects it is
handed, and may never call their state-mutating APIs.  The rule flags
both on any object that reached the obs function as a parameter, the
only route simulation/agent/scheduler objects enter the layer.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import Rule, RuleMeta, register

#: Method names that mutate simulation/agent/scheduler state.
MUTATING_APIS = frozenset(
    {
        "set_governor",
        "set_mapping",
        "set_frequency",
        "set_affinity",
        "start_application",
        "advance",
        "step",
        "tick",
        "reset",
        "apply_action",
        "run_epoch",
        "record_epoch",
        "inject",
        "restore",
        "clear",
    }
)


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _parameters(func: ast.AST) -> Set[str]:
    """Every parameter name of a function, except self/cls."""
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.append(extra.arg)
    return {name for name in names if name not in ("self", "cls")}


@register
class ObservationOnly(Rule):
    """OBS001: obs modules never mutate what they observe."""

    meta = RuleMeta(
        code="OBS001",
        name="obs layer is observation-only",
        severity=Severity.ERROR,
        rationale=(
            "instrumented runs must be tick-for-tick identical to "
            "uninstrumented ones; obs code must not assign to, or call "
            "mutating APIs of, objects handed to it"
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not (
            ctx.module == "repro.obs" or ctx.module.startswith("repro.obs.")
        ):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _parameters(func)
            if not params:
                continue
            yield from self._check_function(ctx, func, params)

    def _check_function(
        self,
        ctx: ModuleContext,
        func: ast.AST,
        params: Set[str],
    ) -> Iterator[Finding]:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(func):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in params:
                        yield self.finding(
                            ctx,
                            target,
                            f"assignment into observed object {root!r}; "
                            "the obs layer is observation-only",
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_APIS
            ):
                root = _root_name(node.func)
                if root in params:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to mutating API {node.func.attr!r} on "
                        f"observed object {root!r}; the obs layer is "
                        "observation-only",
                    )
