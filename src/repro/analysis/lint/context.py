"""Per-module lint context: parsed AST, source lines, import aliases.

Every rule receives one :class:`ModuleContext` per audited file.  The
context owns the AST, knows the module's dotted name (how rules decide
whether they are in scope) and resolves import aliases so a rule can ask
for the *canonical* dotted name of any ``Name``/``Attribute`` chain —
``rng.random()`` after ``import numpy.random as rng`` resolves to
``numpy.random.random``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.lint.findings import Finding, Severity


def module_for_path(path: Path) -> str:
    """Dotted module name of a source file inside the ``repro`` package.

    Falls back to the bare stem for files outside any ``repro`` package
    directory (fixtures, scratch files).
    """
    parts = list(path.resolve().parts)
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [p for p in parts[start:]]
        dotted[-1] = Path(dotted[-1]).stem
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return path.stem


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted module/object name."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


@dataclass
class ModuleContext:
    """One audited source file, parsed and indexed for the rules."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    aliases: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, *, path: str = "<string>", module: Optional[str] = None
    ) -> "ModuleContext":
        """Parse ``source``; ``module`` defaults from ``path``."""
        tree = ast.parse(source, filename=path)
        resolved = module or module_for_path(Path(path))
        return cls(
            path=path,
            module=resolved,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            aliases=_collect_aliases(tree),
        )

    @classmethod
    def from_file(cls, path: Path) -> "ModuleContext":
        """Read and parse one file."""
        return cls.from_source(
            path.read_text(encoding="utf-8"),
            path=str(path),
            module=module_for_path(path),
        )

    # ------------------------------------------------------------------
    # Helpers for rules
    # ------------------------------------------------------------------

    def source_line(self, lineno: int) -> str:
        """Stripped text of one 1-indexed source line ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        Resolves the chain's root through the module's import aliases,
        so the result is comparable against names like
        ``numpy.random.default_rng`` regardless of local ``as`` naming.
        Returns ``None`` for expressions that are not plain dotted names.
        """
        chain: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        chain.append(root)
        return ".".join(reversed(chain))

    def finding(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            severity=severity,
            path=self.path,
            module=self.module,
            line=line,
            col=col,
            message=message,
            source_line=self.source_line(line),
        )
