"""``repro lint``: determinism-aware static analysis of the repo.

An AST-level lint framework enforcing the reproduction's invariants
*before* a run, at commit time, instead of only via the expensive
runtime suites (goldens, serial≡parallel identity, obs identity):

* **DET001** — no nondeterminism sources in the decision-loop packages;
* **DET002** — no unordered iteration on hashing/caching paths;
* **OBS001** — the obs layer is observation-only;
* **FP001**  — exact FP op order on the tick-loop fast path;
* **CFG001** — every config dataclass field has a validation branch;
* **API001** — no mutable default arguments or bare excepts.

Suppress a finding inline with ``# repro: noqa[RULE] reason=...`` (the
reason is mandatory) or record it in the committed baseline with
``repro lint --fix-baseline``.  See DESIGN §12 for the rule-author
guide.
"""

from repro.analysis.lint.baseline import (
    BASELINE_FILENAME,
    BaselineError,
    load_baseline,
    save_baseline,
)
from repro.analysis.lint.context import ModuleContext, module_for_path
from repro.analysis.lint.engine import (
    LintReport,
    default_target,
    iter_source_files,
    lint_paths,
    lint_source,
)
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import (
    Rule,
    RuleMeta,
    all_rule_classes,
    build_rules,
    register,
    rule_descriptions,
)
from repro.analysis.lint.reporters import (
    REPORT_SCHEMA_VERSION,
    render_human,
    render_json,
)
from repro.analysis.lint.suppress import (
    MALFORMED_SUPPRESSION_CODE,
    Suppression,
    parse_suppressions,
)

__all__ = [
    "BASELINE_FILENAME",
    "BaselineError",
    "Finding",
    "LintReport",
    "MALFORMED_SUPPRESSION_CODE",
    "ModuleContext",
    "REPORT_SCHEMA_VERSION",
    "Rule",
    "RuleMeta",
    "Severity",
    "Suppression",
    "all_rule_classes",
    "build_rules",
    "default_target",
    "iter_source_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_for_path",
    "parse_suppressions",
    "register",
    "render_human",
    "render_json",
    "rule_descriptions",
    "save_baseline",
]
