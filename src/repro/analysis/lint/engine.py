"""The lint engine: walk files, run rules, apply suppressions + baseline.

The engine turns paths into :class:`ModuleContext` objects, runs every
selected rule over each, then sorts the raw findings into three bins:

* **active** — unsuppressed, non-baselined; these fail the build;
* **suppressed** — carried a valid reasoned noqa comment;
* **baselined** — fingerprint present in the committed baseline.

A ``repro: noqa`` comment *without* the mandatory ``reason=`` clause
suppresses nothing and yields an extra active finding under the engine
code ``NOQA001``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import Rule, build_rules
from repro.analysis.lint.suppress import (
    MALFORMED_SUPPRESSION_CODE,
    parse_suppressions,
    suppresses,
)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    rules: List[Rule] = field(default_factory=list)
    files: int = 0
    active: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing fails the build."""
        return not self.active

    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 otherwise."""
        return 0 if self.clean else 1

    def sort(self) -> None:
        """Deterministic ordering: path, line, column, rule."""
        for bucket in (self.active, self.suppressed, self.baselined):
            bucket.sort(key=lambda f: (f.path, f.line, f.col, f.rule))


def _check_module(ctx: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    """Raw findings of every rule over one module, plus NOQA001s."""
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    for suppression in parse_suppressions(ctx.lines).values():
        if not suppression.valid:
            findings.append(
                Finding(
                    rule=MALFORMED_SUPPRESSION_CODE,
                    severity=Severity.ERROR,
                    path=ctx.path,
                    module=ctx.module,
                    line=suppression.line,
                    col=0,
                    message=(
                        "suppression is missing its mandatory reason= clause "
                        f"(codes: {', '.join(suppression.codes)})"
                    ),
                    source_line=ctx.source_line(suppression.line),
                )
            )
    return findings


def _bin_findings(
    ctx: ModuleContext,
    findings: Iterable[Finding],
    baseline: Dict[str, str],
    report: LintReport,
) -> None:
    """Sort one module's raw findings into the report's three bins."""
    suppressions = parse_suppressions(ctx.lines)
    for finding in findings:
        suppression = suppressions.get(finding.line)
        if suppression is not None and suppresses(suppression, finding.rule):
            report.suppressed.append(finding)
        elif finding.fingerprint() in baseline:
            report.baselined.append(finding)
        else:
            report.active.append(finding)


def iter_source_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    return sorted(set(files))


def default_target() -> Path:
    """What ``repro lint`` audits when given no paths: the package itself."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_source(
    source: str,
    *,
    module: str,
    path: str = "<fixture>",
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Dict[str, str]] = None,
) -> LintReport:
    """Lint an in-memory snippet as if it were module ``module``.

    The fixture entry point the rule unit tests drive: the snippet is
    attributed to an arbitrary dotted module name, so scope-sensitive
    rules (DET001's package list, CFG001's ``repro.config`` pin) can be
    exercised without touching the real tree.
    """
    report = LintReport(rules=build_rules(rules))
    ctx = ModuleContext.from_source(source, path=path, module=module)
    report.files = 1
    _bin_findings(ctx, _check_module(ctx, report.rules), baseline or {}, report)
    report.sort()
    return report


def lint_paths(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Dict[str, str]] = None,
) -> LintReport:
    """Lint files/directories (default: the installed ``repro`` package).

    Files that fail to parse are reported as an active ``PARSE`` error
    rather than aborting the run.
    """
    report = LintReport(rules=build_rules(rules))
    targets = iter_source_files(list(paths) if paths else [default_target()])
    for path in targets:
        report.files += 1
        try:
            ctx = ModuleContext.from_file(path)
        except SyntaxError as exc:
            report.active.append(
                Finding(
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=str(path),
                    module=path.stem,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    source_line="",
                )
            )
            continue
        _bin_findings(
            ctx, _check_module(ctx, report.rules), baseline or {}, report
        )
    report.sort()
    return report
