"""Findings: what a lint rule reports and how it is fingerprinted.

A :class:`Finding` pins one rule violation to a file, line and column.
Its *fingerprint* deliberately excludes the line number: it hashes the
module, the rule code and the stripped source text of the flagged line,
so a finding recorded in the baseline keeps matching when unrelated
edits shift the file, and stops matching as soon as the offending line
itself changes.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Union


class Severity(enum.Enum):
    """How seriously a finding violates the repo's invariants."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    module: str
    line: int
    col: int
    message: str
    #: Stripped source text of the flagged line (fingerprint input).
    source_line: str

    def fingerprint(self) -> str:
        """Stable identity of the finding across unrelated line shifts."""
        payload = f"{self.module}\x1f{self.rule}\x1f{self.source_line}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        """``path:line:col`` for human output."""
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready document (the JSON reporter's per-finding schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
