"""Lint output: a grep-friendly human report and a stable JSON document.

The JSON reporter is the machine interface CI consumes (``repro lint
--json``); its top-level layout is schema-versioned and covered by
``tests/test_analysis_lint.py`` so downstream automation can rely on
it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.lint.engine import LintReport
from repro.analysis.lint.findings import Severity
from repro.analysis.lint.registry import rule_descriptions

#: Version of the JSON report layout.
REPORT_SCHEMA_VERSION = 1


def render_json(report: LintReport) -> str:
    """The machine-readable report (one JSON document, sorted keys)."""
    document: Dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "repro-lint",
        "rules": rule_descriptions(report.rules),
        "findings": [finding.as_dict() for finding in report.active],
        "summary": {
            "files": report.files,
            "findings": len(report.active),
            "errors": sum(
                1 for f in report.active if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in report.active if f.severity is Severity.WARNING
            ),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_human(report: LintReport, verbose: bool = False) -> str:
    """The console report: ``path:line:col: CODE message`` plus a summary."""
    lines: List[str] = []
    for finding in report.active:
        lines.append(
            f"{finding.location()}: {finding.rule} "
            f"[{finding.severity}] {finding.message}"
        )
    if verbose:
        for finding in report.suppressed:
            lines.append(f"{finding.location()}: {finding.rule} (suppressed)")
        for finding in report.baselined:
            lines.append(f"{finding.location()}: {finding.rule} (baselined)")
    lines.append(
        f"checked {report.files} file{'s' if report.files != 1 else ''}: "
        f"{len(report.active)} finding{'s' if len(report.active) != 1 else ''}"
        f" ({len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined)"
    )
    return "\n".join(lines)
