"""The committed lint baseline: known findings that don't fail the build.

The baseline is a small JSON document mapping finding fingerprints (see
:meth:`~repro.analysis.lint.findings.Finding.fingerprint`) to a human
description of the recorded finding.  ``repro lint --fix-baseline``
rewrites it from the current findings; an entry disappears from the
file as soon as the violation it records is fixed, so the baseline only
ever shrinks under normal development.  The repo ships an **empty**
baseline — every invariant violation is either fixed or carries an
explicit reasoned ``noqa``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.analysis.lint.findings import Finding

#: Default filename, looked up in the working directory.
BASELINE_FILENAME = ".repro-lint-baseline.json"

#: Version of the baseline document layout.
BASELINE_SCHEMA_VERSION = 1


class BaselineError(ValueError):
    """A baseline file is malformed."""


def load_baseline(path: Union[str, Path]) -> Dict[str, str]:
    """Fingerprint -> description map of one baseline file.

    Raises
    ------
    BaselineError
        If the file is not a valid baseline document.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise BaselineError(f"{path}: baseline must be a JSON object")
    if document.get("schema") != BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"{path}: unsupported baseline schema {document.get('schema')!r}"
        )
    findings = document.get("findings")
    if not isinstance(findings, dict):
        raise BaselineError(f"{path}: baseline field 'findings' missing")
    for fingerprint, description in findings.items():
        if not isinstance(fingerprint, str) or not isinstance(description, str):
            raise BaselineError(f"{path}: malformed entry {fingerprint!r}")
    return dict(findings)


def save_baseline(path: Union[str, Path], findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = {
        finding.fingerprint(): f"{finding.rule} {finding.location()}: "
        f"{finding.message}"
        for finding in findings
    }
    document = {
        "schema": BASELINE_SCHEMA_VERSION,
        "findings": dict(sorted(entries.items())),
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
