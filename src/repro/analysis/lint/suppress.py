"""Inline suppression: ``# repro: noqa[RULE] reason=...``.

A finding is suppressed when its line carries a ``repro: noqa`` comment
naming the finding's rule code (or several, comma-separated).  The
linter *requires* a non-empty ``reason=`` clause: a reasonless noqa
does not suppress anything and is itself reported under the engine
code ``NOQA001``, so every exemption in the tree documents why the
invariant does not apply there.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Engine-level code for a malformed (reasonless) suppression comment.
MALFORMED_SUPPRESSION_CODE = "NOQA001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s+reason=(?P<reason>.*))?"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed noqa comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str

    @property
    def valid(self) -> bool:
        """A suppression only counts with a non-empty reason."""
        return bool(self.reason.strip())


def parse_suppressions(lines: List[str]) -> Dict[int, Suppression]:
    """All ``repro: noqa`` comments of a file, keyed by 1-indexed line."""
    suppressions: Dict[int, Suppression] = {}
    for index, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        reason = (match.group("reason") or "").strip()
        suppressions[index] = Suppression(line=index, codes=codes, reason=reason)
    return suppressions


def suppresses(suppression: Suppression, rule_code: str) -> bool:
    """Whether a (valid) suppression covers ``rule_code``."""
    return suppression.valid and rule_code.upper() in suppression.codes
