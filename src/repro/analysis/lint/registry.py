"""The rule registry: every lint rule declares itself here.

A rule is a class with a :class:`RuleMeta` and a ``check`` method that
yields :class:`~repro.analysis.lint.findings.Finding` objects for one
:class:`~repro.analysis.lint.context.ModuleContext`.  Registration is a
decorator, so adding a rule is: write the class, decorate it, import
the module from :mod:`repro.analysis.lint.rules`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, Type

from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity


@dataclass(frozen=True)
class RuleMeta:
    """Identity and documentation of one rule."""

    #: Short code used in findings, ``--rule`` filters and noqa tags.
    code: str
    #: One-line human name.
    name: str
    severity: Severity
    #: The invariant the rule guards (shown by ``repro lint --list-rules``).
    rationale: str


class Rule(abc.ABC):
    """Base class of every lint rule."""

    meta: RuleMeta

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation found in one module."""

    def finding(self, ctx: ModuleContext, node: object, message: str) -> Finding:
        """Shorthand: a finding of this rule at ``node``."""
        import ast

        assert isinstance(node, ast.AST)
        return ctx.finding(self.meta.code, self.meta.severity, node, message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = cls.meta.code
    if code in _REGISTRY and _REGISTRY[code] is not cls:
        raise ValueError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = cls
    return cls


def all_rule_classes() -> Dict[str, Type[Rule]]:
    """Every registered rule class, keyed by code (import-populated)."""
    # Importing the rules package is what populates the registry; done
    # lazily so the registry module itself has no import cycle.
    import repro.analysis.lint.rules  # noqa: F401  (side-effect import)

    return dict(sorted(_REGISTRY.items()))


def build_rules(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (all of them when ``codes`` is None).

    Raises
    ------
    KeyError
        If a requested code is not registered.
    """
    available = all_rule_classes()
    if codes is None:
        return [cls() for cls in available.values()]
    selected: List[Rule] = []
    for code in codes:
        if code not in available:
            known = ", ".join(available)
            raise KeyError(f"unknown rule {code!r} (known: {known})")
        selected.append(available[code]())
    return selected


class DescribedRule(Protocol):
    """Anything carrying a :class:`RuleMeta` (lint and audit rules)."""

    meta: RuleMeta


def rule_descriptions(rules: Iterable[DescribedRule]) -> List[Dict[str, str]]:
    """JSON-ready ``{code, name, severity, rationale}`` rows."""
    return [
        {
            "code": rule.meta.code,
            "name": rule.meta.name,
            "severity": rule.meta.severity.value,
            "rationale": rule.meta.rationale,
        }
        for rule in rules
    ]
