"""The audit engine: build the project model, run rules, bin findings.

Mirrors the lint engine's three-bin contract (active / suppressed /
baselined, ``# repro: noqa[RULE] reason=...`` suppressions reused
verbatim) and adds the project-level outputs the audit exists for: the
behavior-closure digest, its drift against the committed baseline, and
the current scalar/ensemble pairing fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.audit.baseline import AuditBaseline, PairRecord
from repro.analysis.audit.closure import (
    ClosureReport,
    compute_closure,
)
from repro.analysis.audit.fingerprint import MALFORMED_MARKER_CODE
from repro.analysis.audit.project import ProjectModel
from repro.analysis.audit.registry import AuditRule, build_audit_rules
from repro.analysis.audit.rules import TWIN_MODULES, pair_id
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.suppress import (
    Suppression,
    parse_suppressions,
    suppresses,
)


@dataclass
class AuditReport:
    """The outcome of one audit run."""

    rules: List[AuditRule] = field(default_factory=list)
    files: int = 0
    active: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    closure: Optional[ClosureReport] = None
    #: Current fingerprints of every registered scalar/ensemble pair.
    pairs: Dict[str, PairRecord] = field(default_factory=dict)
    #: Digest recorded in the committed baseline ('' without one).
    baseline_digest: str = ""
    #: Whether the baseline's fingerprints compare on this interpreter.
    baseline_comparable: bool = False

    @property
    def drift(self) -> bool:
        """Closure digest drifted from a comparable committed baseline."""
        return (
            self.baseline_comparable
            and self.closure is not None
            and bool(self.baseline_digest)
            and self.closure.digest != self.baseline_digest
        )

    @property
    def clean(self) -> bool:
        """True when no finding fails the build."""
        return not self.active

    def exit_code(self, check_drift: bool = False) -> int:
        """Process exit code: 0 clean (and drift-free when checked)."""
        if not self.clean:
            return 1
        if check_drift and self.drift:
            return 1
        return 0

    def sort(self) -> None:
        """Deterministic ordering: path, line, column, rule."""
        for bucket in (self.active, self.suppressed, self.baselined):
            bucket.sort(key=lambda f: (f.path, f.line, f.col, f.rule))


def current_pairs(model: ProjectModel) -> Dict[str, PairRecord]:
    """Fingerprints of every registered pair present in the tree."""
    pairs: Dict[str, PairRecord] = {}
    for scalar, ensemble in TWIN_MODULES:
        scalar_info = model.modules.get(scalar)
        twin_info = model.modules.get(ensemble)
        if scalar_info is None or twin_info is None:
            continue
        pairs[pair_id(scalar, ensemble)] = PairRecord(
            scalar=scalar_info.fingerprint, ensemble=twin_info.fingerprint
        )
    return pairs


def _marker_findings(model: ProjectModel) -> List[Finding]:
    """IRR001 findings for reasonless behavior-irrelevant markers."""
    findings: List[Finding] = []
    for name in sorted(model.modules):
        info = model.modules[name]
        for line in info.malformed_markers:
            findings.append(
                Finding(
                    rule=MALFORMED_MARKER_CODE,
                    severity=Severity.ERROR,
                    path=info.path,
                    module=info.name,
                    line=line,
                    col=0,
                    message=(
                        "behavior-irrelevant marker is missing its mandatory "
                        "reason= clause; the definition stays fingerprinted"
                    ),
                    source_line=info.ctx.source_line(line),
                )
            )
    return findings


def audit_project(
    root: Optional[Path] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[AuditBaseline] = None,
) -> AuditReport:
    """Audit a package tree (default: the installed ``repro`` package).

    Builds the project model once and shares it between the closure
    digest, the pairing table and every rule.
    """
    resolved_baseline = baseline if baseline is not None else AuditBaseline()
    model = ProjectModel.build(root)
    report = AuditReport(rules=build_audit_rules(rules))
    report.files = len(model.modules)
    report.closure = compute_closure(model)
    report.pairs = current_pairs(model)
    report.baseline_digest = resolved_baseline.closure_digest
    report.baseline_comparable = resolved_baseline.comparable

    raw: List[Finding] = list(_marker_findings(model))
    for rule in report.rules:
        raw.extend(rule.check(model, resolved_baseline))

    suppression_cache: Dict[str, Dict[int, Suppression]] = {}
    for finding in raw:
        info = model.modules.get(finding.module)
        if info is not None:
            if finding.module not in suppression_cache:
                suppression_cache[finding.module] = parse_suppressions(
                    info.ctx.lines
                )
            suppressions = suppression_cache[finding.module]
        else:
            suppressions = {}
        suppression = suppressions.get(finding.line)
        if suppression is not None and suppresses(suppression, finding.rule):
            report.suppressed.append(finding)
        elif finding.fingerprint() in resolved_baseline.findings:
            report.baselined.append(finding)
        else:
            report.active.append(finding)
    report.sort()
    return report
