"""Normalized behavior fingerprints of functions, classes and modules.

A fingerprint is a SHA-256 over ``ast.dump`` of a *normalized* AST:
docstrings are stripped, comments and blank lines never reach the AST in
the first place, and ``include_attributes=False`` drops line/column
numbers — so reformatting, re-commenting or re-documenting code keeps
its fingerprint stable while any executable change (a constant, an
operator, a default, an annotation) changes it.

A definition can opt out of fingerprinting with a marker comment on its
``def``/``class`` line (or the line directly above)::

    def label(self) -> str:  # repro: behavior-irrelevant reason=display only

The ``reason=`` clause is mandatory, exactly like the lint suppressions
from PR 5: a reasonless marker opts nothing out and is reported as an
active :data:`MALFORMED_MARKER_CODE` finding.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import re
from dataclasses import dataclass
from typing import Dict, List, Union

#: Engine-level code for a marker comment missing its reason clause.
MALFORMED_MARKER_CODE = "IRR001"

#: Version of the normalization algorithm; bump on any change to how
#: fingerprints are derived so closure digests can never silently
#: collide across algorithm revisions.
FINGERPRINT_SCHEMA_VERSION = 1

_MARKER_RE = re.compile(
    r"#\s*repro:\s*behavior-irrelevant(?:\s+reason=(?P<reason>.*))?"
)


@dataclass(frozen=True)
class Marker:
    """One parsed ``behavior-irrelevant`` marker comment."""

    line: int
    reason: str

    @property
    def valid(self) -> bool:
        """A marker only opts out with a non-empty reason."""
        return bool(self.reason.strip())


def parse_markers(lines: List[str]) -> Dict[int, Marker]:
    """All behavior-irrelevant markers of a file, keyed by 1-based line."""
    markers: Dict[int, Marker] = {}
    for index, text in enumerate(lines, start=1):
        match = _MARKER_RE.search(text)
        if match is None:
            continue
        reason = (match.group("reason") or "").strip()
        markers[index] = Marker(line=index, reason=reason)
    return markers


def marker_for(node: ast.stmt, markers: Dict[int, Marker]) -> Union[Marker, None]:
    """The marker opting ``node`` out, if any.

    A marker attaches to a definition when it sits on the ``def``/
    ``class`` line itself or on the line directly above it.
    """
    for line in (node.lineno, node.lineno - 1):
        marker = markers.get(line)
        if marker is not None and marker.valid:
            return marker
    return None


_DOCSTRING_OWNERS = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def strip_docstrings(node: ast.AST) -> None:
    """Remove every docstring expression from ``node``'s subtree, in place.

    Applied once per parsed module by the project model, so the
    fingerprint helpers below can ``ast.dump`` without deep-copying
    (which dominates whole-package fingerprinting time otherwise).
    """
    for child in ast.walk(node):
        if not isinstance(child, _DOCSTRING_OWNERS):
            continue
        body = child.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            del body[0]


def normalized_dump(node: ast.AST) -> str:
    """``ast.dump`` of ``node`` with docstrings and locations stripped.

    Deep-copies first, so the caller's AST is untouched; the project
    model uses the in-place :func:`strip_docstrings` +
    :func:`fingerprint_node` path instead to avoid the copy.
    """
    clone = copy.deepcopy(node)
    strip_docstrings(clone)
    return ast.dump(clone, include_attributes=False)


def fingerprint_node(node: ast.AST) -> str:
    """Behavior fingerprint of one already-normalized AST node.

    The node must have had its docstrings stripped (see
    :func:`strip_docstrings`); line/column info is excluded by the dump
    itself.
    """
    return hashlib.sha256(
        ast.dump(node, include_attributes=False).encode("utf-8")
    ).hexdigest()[:16]


def fingerprint_module(
    tree: ast.Module, markers: Dict[int, Marker]
) -> str:
    """Normalized fingerprint of an already-normalized module tree.

    Top-level definitions carrying a valid ``behavior-irrelevant``
    marker are dropped before hashing, so edits inside them keep the
    module fingerprint (and therefore the closure digest) stable.  The
    filtered view shares the original statement nodes — nothing is
    copied or mutated.
    """
    view = ast.Module(
        body=[
            stmt
            for stmt in tree.body
            if not (
                isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and marker_for(stmt, markers) is not None
            )
        ],
        type_ignores=[],
    )
    return hashlib.sha256(
        ast.dump(view, include_attributes=False).encode("utf-8")
    ).hexdigest()[:16]
