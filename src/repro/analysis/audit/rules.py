"""The audit ruleset: EQV001, MUT001, RED001.

* **EQV001** — every scalar fast-path module is registered against its
  vectorized ensemble twin; a scalar edit whose twin is untouched
  relative to the committed pairing baseline is exactly the hazard the
  bit-identity suites exist to catch, surfaced statically.
* **MUT001** — module-level mutable containers in the worker-reachable
  behavior closure are cross-process shared-state hazards for the PR-8
  shard path (each worker forks its own copy; an in-place mutation
  silently diverges between processes).
* **RED001** — reductions over unordered iterables in the FP-exact
  fast-path modules produce order-dependent floating-point results,
  breaking the bit-identity guarantee the fingerprints protect.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.audit.baseline import AuditBaseline
from repro.analysis.audit.closure import CLOSURE_EXCLUDES, CLOSURE_ROOTS
from repro.analysis.audit.project import ProjectModel
from repro.analysis.audit.registry import AuditRule, register
from repro.analysis.lint.context import ModuleContext
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import RuleMeta
from repro.analysis.lint.rules.floating_point import FAST_PATH_MODULES

#: Scalar fast-path module <-> vectorized ensemble twin pairings.
TWIN_MODULES: Tuple[Tuple[str, str], ...] = (
    ("repro.sched.scheduler", "repro.ensemble.sched"),
    ("repro.power.table", "repro.ensemble.power_thermal"),
    ("repro.core.agent", "repro.ensemble.agents"),
    ("repro.core.manager", "repro.ensemble.managers"),
)


def pair_id(scalar: str, ensemble: str) -> str:
    """Stable baseline key of one scalar/ensemble pairing."""
    return f"{scalar}|{ensemble}"


@register
class ScalarEnsembleTwins(AuditRule):
    """EQV001: scalar fast-path edits must touch their ensemble twin."""

    meta = RuleMeta(
        code="EQV001",
        name="scalar edit without its ensemble twin",
        severity=Severity.ERROR,
        rationale=(
            "the vectorized ensemble engine is bit-faithful to the "
            "scalar fast path only while every behavior edit lands in "
            "both; a scalar-only change relative to the committed "
            "pairing baseline bypasses that guarantee until the runtime "
            "equivalence suites catch it"
        ),
    )

    def check(
        self, project: ProjectModel, baseline: AuditBaseline
    ) -> Iterator[Finding]:
        if not baseline.comparable:
            # Fingerprints recorded under a different interpreter (or no
            # baseline at all) are not diffable against this tree.
            return
        for scalar, ensemble in TWIN_MODULES:
            recorded = baseline.pairs.get(pair_id(scalar, ensemble))
            if recorded is None:
                continue
            scalar_info = project.modules.get(scalar)
            twin_info = project.modules.get(ensemble)
            if scalar_info is None or twin_info is None:
                continue
            if (
                scalar_info.fingerprint != recorded.scalar
                and twin_info.fingerprint == recorded.ensemble
            ):
                yield self.module_finding(
                    scalar_info,
                    f"behavior fingerprint of {scalar} changed but its "
                    f"ensemble twin {ensemble} is untouched; mirror the "
                    "edit (or verify equivalence) and refresh the pairing "
                    "baseline with `repro audit --fix-baseline`",
                )


#: Constructor names whose module-level result is mutable shared state.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)

_MUTABLE_QUALIFIED = frozenset(
    {
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


def _mutable_value_kind(ctx: ModuleContext, node: ast.expr) -> str:
    """Why ``node`` builds a mutable container, or '' when it does not."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _MUTABLE_CONSTRUCTORS:
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            qualified = ctx.qualified_name(node.func)
            if qualified in _MUTABLE_QUALIFIED:
                return qualified.split(".")[-1]
    return ""


@register
class NoWorkerSharedMutableState(AuditRule):
    """MUT001: no module-level mutable state in the worker closure."""

    meta = RuleMeta(
        code="MUT001",
        name="module-level mutable state reachable from workers",
        severity=Severity.ERROR,
        rationale=(
            "engine worker processes each import their own copy of the "
            "behavior closure; a module-level dict/list/set mutated at "
            "runtime diverges silently between processes and between the "
            "scalar and sharded execution paths — use tuple/frozenset/"
            "MappingProxyType, or suppress with the reason the value is "
            "never mutated"
        ),
    )

    def check(
        self, project: ProjectModel, baseline: AuditBaseline
    ) -> Iterator[Finding]:
        members = project.reachable(CLOSURE_ROOTS, exclude_prefixes=CLOSURE_EXCLUDES)
        for name in members:
            info = project.modules[name]
            for stmt in info.ctx.tree.body:
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets = [stmt.target]
                    value = stmt.value
                else:
                    continue
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if not names or all(
                    n.startswith("__") and n.endswith("__") for n in names
                ):
                    continue
                kind = _mutable_value_kind(info.ctx, value)
                if kind:
                    yield self.finding_at(
                        info,
                        stmt,
                        f"module-level mutable {kind} {', '.join(names)} "
                        "is reachable from engine worker processes; make "
                        "it immutable (tuple/frozenset/MappingProxyType) "
                        "or suppress with a reason",
                    )


_REDUCTIONS = frozenset({"sum", "min", "max"})

_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _unordered_arg(node: ast.expr) -> str:
    """Why ``node`` iterates in unspecified order, or '' when ordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in _DICT_VIEWS:
            return f"an unsorted .{node.func.attr}() view"
    return ""


@register
class OrderedReductionsOnly(AuditRule):
    """RED001: FP-exact modules never reduce over unordered iterables."""

    meta = RuleMeta(
        code="RED001",
        name="order-sensitive reduction over an unordered iterable",
        severity=Severity.ERROR,
        rationale=(
            "floating-point reductions in the FP-exact fast-path modules "
            "are bit-compared against the scalar reference; folding a "
            "set or an unsorted dict view reduces in hash order, which "
            "is not a reproducible operand order — sort first"
        ),
    )

    def check(
        self, project: ProjectModel, baseline: AuditBaseline
    ) -> Iterator[Finding]:
        for name in sorted(project.modules):
            if name not in FAST_PATH_MODULES:
                continue
            info = project.modules[name]
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                reducer = ""
                if isinstance(node.func, ast.Name) and node.func.id in _REDUCTIONS:
                    reducer = node.func.id
                else:
                    qualified = info.ctx.qualified_name(node.func)
                    if qualified in ("math.fsum", "numpy.sum"):
                        reducer = qualified
                if not reducer:
                    continue
                why = _unordered_arg(node.args[0])
                if why:
                    yield self.finding_at(
                        info,
                        node,
                        f"{reducer}() over {why} folds in hash order in an "
                        "FP-exact module; wrap the operand in sorted(...) "
                        "to pin the reduction order",
                    )
