"""The committed audit baseline: pairing fingerprints + closure digest.

Unlike the lint baseline (a flat fingerprint -> description map), the
audit baseline also records the *state* the audit rules compare the
tree against:

* the **closure digest** at the time the baseline was written — CI
  fails on drift without a matching baseline update, so every
  behavior-relevant edit is explicitly acknowledged;
* the **pairing fingerprints** of every scalar fast-path module and its
  vectorized ensemble twin — what EQV001 diffs to catch a scalar-only
  edit;
* the interpreter's ``major.minor`` tag — ``ast.dump`` output differs
  across Python minors, so fingerprints recorded under one interpreter
  are only compared under the same one (checks auto-skip otherwise).

``repro audit --fix-baseline`` rewrites the file from the current tree;
the findings map should stay empty under normal development, exactly
like the lint baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.analysis.audit.closure import python_tag
from repro.analysis.lint.baseline import BaselineError
from repro.analysis.lint.findings import Finding

#: Default filename, looked up in the working directory.
AUDIT_BASELINE_FILENAME = ".repro-audit-baseline.json"

#: Version of the audit-baseline document layout.
AUDIT_BASELINE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PairRecord:
    """Recorded fingerprints of one scalar/ensemble module pair."""

    scalar: str
    ensemble: str


@dataclass
class AuditBaseline:
    """Parsed audit baseline (an empty one when no file exists)."""

    python: str = ""
    closure_digest: str = ""
    pairs: Dict[str, PairRecord] = field(default_factory=dict)
    findings: Dict[str, str] = field(default_factory=dict)

    @property
    def exists(self) -> bool:
        """Whether this came from a real file (vs the empty default)."""
        return bool(self.python)

    @property
    def comparable(self) -> bool:
        """Whether recorded fingerprints compare against this interpreter."""
        return self.exists and self.python == python_tag()


def load_audit_baseline(path: Union[str, Path]) -> AuditBaseline:
    """Parse one audit baseline file.

    Raises
    ------
    BaselineError
        If the file is not a valid audit-baseline document.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise BaselineError(f"{path}: audit baseline must be a JSON object")
    if document.get("schema") != AUDIT_BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"{path}: unsupported audit baseline schema "
            f"{document.get('schema')!r}"
        )
    python = document.get("python")
    digest = document.get("closure_digest")
    raw_pairs = document.get("pairs")
    raw_findings = document.get("findings")
    if (
        not isinstance(python, str)
        or not isinstance(digest, str)
        or not isinstance(raw_pairs, dict)
        or not isinstance(raw_findings, dict)
    ):
        raise BaselineError(f"{path}: malformed audit baseline document")
    pairs: Dict[str, PairRecord] = {}
    for pair_id in sorted(raw_pairs):
        record = raw_pairs[pair_id]
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("scalar"), str)
            or not isinstance(record.get("ensemble"), str)
        ):
            raise BaselineError(f"{path}: malformed pair entry {pair_id!r}")
        pairs[pair_id] = PairRecord(
            scalar=record["scalar"], ensemble=record["ensemble"]
        )
    findings: Dict[str, str] = {}
    for fingerprint in sorted(raw_findings):
        description = raw_findings[fingerprint]
        if not isinstance(fingerprint, str) or not isinstance(description, str):
            raise BaselineError(f"{path}: malformed entry {fingerprint!r}")
        findings[fingerprint] = description
    return AuditBaseline(
        python=python, closure_digest=digest, pairs=pairs, findings=findings
    )


def save_audit_baseline(
    path: Union[str, Path],
    closure_digest: str,
    pairs: Dict[str, PairRecord],
    findings: Iterable[Finding],
) -> int:
    """Write the baseline for the current tree; returns the finding count."""
    entries = {
        finding.fingerprint(): f"{finding.rule} {finding.location()}: "
        f"{finding.message}"
        for finding in findings
    }
    document = {
        "schema": AUDIT_BASELINE_SCHEMA_VERSION,
        "python": python_tag(),
        "closure_digest": closure_digest,
        "pairs": {
            pair_id: {
                "scalar": pairs[pair_id].scalar,
                "ensemble": pairs[pair_id].ensemble,
            }
            for pair_id in sorted(pairs)
        },
        "findings": dict(sorted(entries.items())),
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
