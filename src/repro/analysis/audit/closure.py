"""The behavior-closure digest: what the result cache is keyed on.

The *behavior closure* is everything transitively reachable — through
the project model's import/call graph — from the job executors: the
scalar runner entry points (:func:`repro.experiments.runner.run_workload`
/ ``run_scenario``), the vectorized ensemble engine, and checkpoint
capture.  The closure digest combines the normalized fingerprint of
every module in that set, so it changes exactly when a behavior-relevant
edit lands anywhere a cached :class:`~repro.experiments.runner.RunSummary`
could depend on, and stays put for docstring/comment/formatting edits.

:func:`repro.experiments.engine.spec.canonical_json` mixes the digest
into every job key, which is what makes the content-addressed result
cache *statically* sound: stale results are unreachable by construction
instead of by a remembered ``repro.__version__`` bump.

The analysis tooling itself (``repro.analysis.lint``,
``repro.analysis.audit``) is excluded from the closure — it measures
behavior, it does not produce it — and the digest document carries the
fingerprint schema version and the interpreter's ``major.minor`` tag,
so algorithm revisions and interpreter upgrades (whose ASTs and pickles
differ) re-key the cache too.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.analysis.audit.fingerprint import FINGERPRINT_SCHEMA_VERSION
from repro.analysis.audit.project import ProjectModel

#: The job executors whose transitive imports define the closure.
CLOSURE_ROOTS: Tuple[str, ...] = (
    "repro.experiments.runner",
    "repro.ensemble.engine",
    "repro.ensemble.runner",
    "repro.checkpoint.state",
)

#: Tooling packages never included in the closure.
CLOSURE_EXCLUDES: Tuple[str, ...] = (
    "repro.analysis.audit",
    "repro.analysis.lint",
)


def python_tag() -> str:
    """``major.minor`` of the running interpreter (part of the digest)."""
    return f"{sys.version_info[0]}.{sys.version_info[1]}"


@dataclass(frozen=True)
class ClosureReport:
    """The closure digest plus everything that went into it."""

    digest: str
    python: str
    roots: Tuple[str, ...]
    #: Module name -> normalized module fingerprint, every closure member.
    modules: Dict[str, str]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready document (sorted, reproducible)."""
        return {
            "digest": self.digest,
            "python": self.python,
            "roots": list(self.roots),
            "modules": {name: self.modules[name] for name in sorted(self.modules)},
        }


def compute_closure(
    model: ProjectModel,
    roots: Tuple[str, ...] = CLOSURE_ROOTS,
    excludes: Tuple[str, ...] = CLOSURE_EXCLUDES,
) -> ClosureReport:
    """Closure membership and digest of an already-built project model."""
    members = model.reachable(roots, exclude_prefixes=excludes)
    modules = {name: model.modules[name].fingerprint for name in members}
    payload = {
        "schema": FINGERPRINT_SCHEMA_VERSION,
        "python": python_tag(),
        "roots": sorted(roots),
        "modules": {name: modules[name] for name in sorted(modules)},
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return ClosureReport(
        digest=digest,
        python=python_tag(),
        roots=tuple(sorted(roots)),
        modules=modules,
    )


_CLOSURE_CACHE: Dict[str, ClosureReport] = {}


def closure_report(root: Optional[Path] = None) -> ClosureReport:
    """The closure report for a package tree, memoised per resolved root.

    Parsing and fingerprinting the whole package costs a few hundred
    milliseconds, and job-key derivation calls this for every spec, so
    the report is computed once per (process, root).  Tests that edit a
    tree in place must call :func:`clear_closure_cache` between edits.
    """
    key = str(Path(root).resolve()) if root is not None else ""
    cached = _CLOSURE_CACHE.get(key)
    if cached is None:
        cached = compute_closure(ProjectModel.build(root))
        _CLOSURE_CACHE[key] = cached
    return cached


def closure_digest(root: Optional[Path] = None) -> str:
    """The behavior-closure digest of a package tree (memoised)."""
    return closure_report(root).digest


def clear_closure_cache() -> None:
    """Drop every memoised closure report (tests editing trees in place)."""
    _CLOSURE_CACHE.clear()
