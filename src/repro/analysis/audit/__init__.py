"""``repro audit``: call-graph behavior fingerprints for cache soundness.

An AST-driven project model of the ``repro`` package — modules, top-
level symbols, and a module-level import/call graph — from which two
statically-derived guarantees follow:

* the **behavior-closure digest** (everything transitively reachable
  from the job executors, fingerprinted with docstrings/comments/line
  numbers stripped) participates in every result-cache job key, so a
  behavior-relevant edit cold-misses the cache automatically while a
  doc-only edit keeps it warm;
* the **audit rules** check graph-level invariants no per-file lint can
  see: EQV001 (a scalar fast-path edit whose vectorized ensemble twin
  is untouched relative to the committed pairing baseline), MUT001
  (module-level mutable state reachable from engine worker processes)
  and RED001 (order-sensitive reductions over unordered iterables in
  FP-exact modules).

Definitions opt out of fingerprinting with ``# repro: behavior-
irrelevant reason=...`` (the reason is mandatory; reasonless markers
are IRR001 findings), and findings suppress with the lint layer's
``# repro: noqa[RULE] reason=...`` comments.  See DESIGN §17.
"""

from repro.analysis.audit.baseline import (
    AUDIT_BASELINE_FILENAME,
    AuditBaseline,
    PairRecord,
    load_audit_baseline,
    save_audit_baseline,
)
from repro.analysis.audit.closure import (
    CLOSURE_EXCLUDES,
    CLOSURE_ROOTS,
    ClosureReport,
    clear_closure_cache,
    closure_digest,
    closure_report,
    compute_closure,
    python_tag,
)
from repro.analysis.audit.engine import (
    AuditReport,
    audit_project,
    current_pairs,
)
from repro.analysis.audit.fingerprint import (
    FINGERPRINT_SCHEMA_VERSION,
    MALFORMED_MARKER_CODE,
    Marker,
    fingerprint_module,
    fingerprint_node,
    normalized_dump,
    parse_markers,
    strip_docstrings,
)
from repro.analysis.audit.project import ModuleInfo, ProjectModel, SymbolInfo
from repro.analysis.audit.registry import (
    AuditRule,
    all_audit_rule_classes,
    build_audit_rules,
    register,
)
from repro.analysis.audit.report import (
    AUDIT_REPORT_SCHEMA_VERSION,
    explain_job_key,
    render_audit_human,
    render_audit_json,
    render_closure_table,
)
from repro.analysis.audit.rules import TWIN_MODULES, pair_id

__all__ = [
    "AUDIT_BASELINE_FILENAME",
    "AUDIT_REPORT_SCHEMA_VERSION",
    "AuditBaseline",
    "AuditReport",
    "AuditRule",
    "CLOSURE_EXCLUDES",
    "CLOSURE_ROOTS",
    "ClosureReport",
    "FINGERPRINT_SCHEMA_VERSION",
    "MALFORMED_MARKER_CODE",
    "Marker",
    "ModuleInfo",
    "PairRecord",
    "ProjectModel",
    "SymbolInfo",
    "TWIN_MODULES",
    "all_audit_rule_classes",
    "audit_project",
    "build_audit_rules",
    "clear_closure_cache",
    "closure_digest",
    "closure_report",
    "compute_closure",
    "current_pairs",
    "explain_job_key",
    "fingerprint_module",
    "fingerprint_node",
    "load_audit_baseline",
    "normalized_dump",
    "pair_id",
    "parse_markers",
    "python_tag",
    "register",
    "render_audit_human",
    "render_audit_json",
    "render_closure_table",
    "save_audit_baseline",
    "strip_docstrings",
]
