"""Audit output: human report, lint-contract JSON, and key explanations.

The JSON document deliberately shares its top-level layout with the
lint reporter (``schema``/``tool``/``rules``/``findings``/``summary``,
same per-finding fields) so CI and downstream automation consume both
through one contract; the audit adds a ``closure`` section carrying the
digest, drift status and pairing table.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional

import repro
from repro.analysis.audit.engine import AuditReport
from repro.analysis.lint.findings import Severity
from repro.analysis.lint.registry import rule_descriptions

#: Version of the audit JSON report layout.
AUDIT_REPORT_SCHEMA_VERSION = 1


def render_audit_json(report: AuditReport) -> str:
    """The machine-readable report (one JSON document, sorted keys)."""
    closure: Dict[str, Any] = {}
    if report.closure is not None:
        closure = {
            "digest": report.closure.digest,
            "python": report.closure.python,
            "roots": list(report.closure.roots),
            "modules": len(report.closure.modules),
            "baseline_digest": report.baseline_digest,
            "baseline_comparable": report.baseline_comparable,
            "drift": report.drift,
        }
    document: Dict[str, Any] = {
        "schema": AUDIT_REPORT_SCHEMA_VERSION,
        "tool": "repro-audit",
        "rules": rule_descriptions(report.rules),
        "findings": [finding.as_dict() for finding in report.active],
        "summary": {
            "files": report.files,
            "findings": len(report.active),
            "errors": sum(
                1 for f in report.active if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in report.active if f.severity is Severity.WARNING
            ),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
        "closure": closure,
        "pairs": {
            name: {
                "scalar": report.pairs[name].scalar,
                "ensemble": report.pairs[name].ensemble,
            }
            for name in sorted(report.pairs)
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_audit_human(report: AuditReport, verbose: bool = False) -> str:
    """The console report: findings, then the closure/drift summary."""
    lines: List[str] = []
    for finding in report.active:
        lines.append(
            f"{finding.location()}: {finding.rule} "
            f"[{finding.severity}] {finding.message}"
        )
    if verbose:
        for finding in report.suppressed:
            lines.append(f"{finding.location()}: {finding.rule} (suppressed)")
        for finding in report.baselined:
            lines.append(f"{finding.location()}: {finding.rule} (baselined)")
    if report.closure is not None:
        lines.append(
            f"closure: {len(report.closure.modules)} modules, "
            f"digest {report.closure.digest[:16]} (py{report.closure.python})"
        )
        if report.baseline_digest:
            if not report.baseline_comparable:
                lines.append(
                    "baseline: recorded under a different interpreter; "
                    "drift and pairing checks skipped"
                )
            elif report.drift:
                lines.append(
                    f"baseline: closure drifted from {report.baseline_digest[:16]} "
                    "(behavior changed; refresh with `repro audit --fix-baseline`)"
                )
            else:
                lines.append("baseline: closure digest matches")
    lines.append(
        f"audited {report.files} module{'s' if report.files != 1 else ''}: "
        f"{len(report.active)} finding{'s' if len(report.active) != 1 else ''}"
        f" ({len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined)"
    )
    return "\n".join(lines)


def render_closure_table(report: AuditReport) -> str:
    """Per-module fingerprint table (``repro audit --show-closure``).

    Diffing this table between two trees names the exact module whose
    behavior change caused a closure-digest drift.
    """
    if report.closure is None:
        return "no closure computed"
    lines = [
        f"{name}  {report.closure.modules[name]}"
        for name in sorted(report.closure.modules)
    ]
    lines.append(f"digest: {report.closure.digest}")
    return "\n".join(lines)


def explain_job_key(
    key_prefix: str,
    cache_root: Path,
    current_digest: str,
    version: Optional[str] = None,
) -> str:
    """Explain a cached result's identity (``repro audit --explain KEY``).

    Looks the key (or an unambiguous prefix, >= 8 hex chars) up in the
    result cache and reports whether the entry would still be served:
    its stored package version and behavior-closure digest are compared
    against the current tree's.
    """
    if len(key_prefix) < 8:
        return f"key prefix {key_prefix!r} is too short (need >= 8 hex chars)"
    store = cache_root / "results"
    matches = sorted(
        path
        for path in store.rglob("*.pkl")
        if path.stem.startswith(key_prefix)
    )
    if not matches:
        return f"no cache entry under {store} matches {key_prefix!r}"
    if len(matches) > 1:
        listed = ", ".join(path.stem[:16] for path in matches)
        return f"ambiguous prefix {key_prefix!r}: matches {listed}"
    path = matches[0]
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except Exception as exc:  # pragma: no cover - corrupt file shapes vary
        return f"{path.stem[:16]}: entry is corrupt ({type(exc).__name__})"
    expected_version = version if version is not None else repro.__version__
    stored_version = payload.get("version")
    stored_closure = payload.get("closure")
    lines = [
        f"key      : {path.stem}",
        f"entry    : {path}",
        f"version  : stored {stored_version!r}, current {expected_version!r}",
        f"closure  : stored {str(stored_closure)[:16]}, "
        f"current {current_digest[:16]}",
    ]
    if stored_closure is None:
        lines.append(
            "verdict  : STALE — entry predates closure-digest keying"
        )
    elif stored_version != expected_version:
        lines.append("verdict  : STALE — package version changed")
    elif stored_closure != current_digest:
        lines.append(
            "verdict  : STALE — behavior closure changed since this entry "
            "was stored (a fresh run will re-execute and re-key)"
        )
    else:
        lines.append("verdict  : FRESH — entry matches the current tree")
    return "\n".join(lines)
