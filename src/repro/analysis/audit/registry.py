"""The audit-rule registry, mirroring the lint registry's shape.

Audit rules differ from lint rules in one way: they check the whole
:class:`~repro.analysis.audit.project.ProjectModel` (plus the committed
:class:`~repro.analysis.audit.baseline.AuditBaseline`) instead of one
module at a time, because every audit invariant — pairing drift,
worker-reachable state, closure membership — is a property of the
graph, not of a single file.  Everything else (``RuleMeta``,
``Finding``, severities, ``--rule`` filtering, registration by
decorator) is reused from the lint layer.
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.analysis.audit.baseline import AuditBaseline
from repro.analysis.audit.project import ModuleInfo, ProjectModel
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import RuleMeta


class AuditRule(abc.ABC):
    """Base class of every project-level audit rule."""

    meta: RuleMeta

    @abc.abstractmethod
    def check(
        self, project: ProjectModel, baseline: AuditBaseline
    ) -> Iterator[Finding]:
        """Yield every violation found in the project."""

    def finding_at(
        self, info: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """Shorthand: a finding of this rule at ``node`` in ``info``."""
        return info.ctx.finding(self.meta.code, self.meta.severity, node, message)

    def module_finding(self, info: ModuleInfo, message: str) -> Finding:
        """Shorthand: a finding anchored at a module's first line."""
        return Finding(
            rule=self.meta.code,
            severity=self.meta.severity,
            path=info.path,
            module=info.name,
            line=1,
            col=0,
            message=message,
            source_line=info.ctx.source_line(1),
        )


_REGISTRY: Dict[str, Type[AuditRule]] = {}


def register(cls: Type[AuditRule]) -> Type[AuditRule]:
    """Class decorator adding an audit rule to the registry."""
    code = cls.meta.code
    if code in _REGISTRY and _REGISTRY[code] is not cls:
        raise ValueError(f"duplicate audit rule code {code!r}")
    _REGISTRY[code] = cls
    return cls


def all_audit_rule_classes() -> Dict[str, Type[AuditRule]]:
    """Every registered audit rule class, keyed by code."""
    # Importing the rules module is what populates the registry; done
    # lazily so the registry module itself has no import cycle.
    import repro.analysis.audit.rules  # noqa: F401  (side-effect import)

    return dict(sorted(_REGISTRY.items()))


def build_audit_rules(codes: Optional[Sequence[str]] = None) -> List[AuditRule]:
    """Instantiate the selected audit rules (all when ``codes`` is None).

    Raises
    ------
    KeyError
        If a requested code is not registered.
    """
    available = all_audit_rule_classes()
    if codes is None:
        return [available[code]() for code in sorted(available)]
    selected: List[AuditRule] = []
    for code in codes:
        if code not in available:
            known = ", ".join(available)
            raise KeyError(f"unknown audit rule {code!r} (known: {known})")
        selected.append(available[code]())
    return selected
