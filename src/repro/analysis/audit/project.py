"""The AST-driven project model: modules, symbols, import/call graph.

A :class:`ProjectModel` parses every source file of a package tree into
the lint layer's :class:`~repro.analysis.lint.context.ModuleContext`,
computes normalized behavior fingerprints (see
:mod:`repro.analysis.audit.fingerprint`) per module and per top-level
definition, and resolves a module-level dependency graph:

* every ``import``/``from ... import`` — including lazy imports inside
  function bodies — adds an edge to the imported module *and* to each
  ancestor package (importing ``repro.x.y`` executes ``repro/__init__``
  and ``repro/x/__init__`` too);
* every dotted call or attribute access that resolves (through the
  context's import aliases) to a name under the package adds an edge to
  the longest matching module prefix.

The graph is what :mod:`repro.analysis.audit.closure` walks to derive
the behavior-closure digest, and what the audit rules use to decide
which modules are reachable from the experiment engine's worker
processes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.audit.fingerprint import (
    Marker,
    fingerprint_module,
    fingerprint_node,
    marker_for,
    parse_markers,
    strip_docstrings,
)
from repro.analysis.lint.context import ModuleContext, module_for_path


@dataclass(frozen=True)
class SymbolInfo:
    """One fingerprinted top-level definition."""

    name: str
    kind: str
    line: int
    fingerprint: str


@dataclass
class ModuleInfo:
    """One parsed, fingerprinted module of the project."""

    name: str
    path: str
    ctx: ModuleContext
    #: Resolved in-package dependency edges (sorted module names).
    imports: Tuple[str, ...] = ()
    #: Normalized whole-module fingerprint (opt-outs excluded).
    fingerprint: str = ""
    #: Fingerprints of every top-level ``def``/``class``, by name.
    symbols: Dict[str, SymbolInfo] = field(default_factory=dict)
    #: Symbol name -> reason for every valid behavior-irrelevant marker.
    irrelevant: Dict[str, str] = field(default_factory=dict)
    #: Line numbers of reasonless behavior-irrelevant markers.
    malformed_markers: Tuple[int, ...] = ()


def _package_root() -> Path:
    """Source directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def _iter_sources(root: Path) -> List[Path]:
    """Every ``*.py`` under ``root``, sorted for determinism."""
    return sorted(
        path for path in root.rglob("*.py") if "__pycache__" not in path.parts
    )


def _ancestors(module: str, package: str) -> List[str]:
    """``module`` plus every ancestor package down to ``package``."""
    parts = module.split(".")
    names: List[str] = []
    for depth in range(1, len(parts) + 1):
        candidate = ".".join(parts[:depth])
        if candidate == package or candidate.startswith(package + "."):
            names.append(candidate)
    return names


class ProjectModel:
    """Parsed project: fingerprinted modules plus their dependency graph."""

    def __init__(self, root: Path, package: str, modules: Dict[str, ModuleInfo]):
        self.root = root
        self.package = package
        self.modules = modules

    @classmethod
    def build(cls, root: Optional[Path] = None) -> "ProjectModel":
        """Parse the package tree at ``root`` (default: installed repro)."""
        resolved = Path(root).resolve() if root is not None else _package_root()
        package = resolved.name
        modules: Dict[str, ModuleInfo] = {}
        for path in _iter_sources(resolved):
            ctx = ModuleContext.from_file(path)
            modules[ctx.module] = _build_module(ctx)
        model = cls(resolved, package, modules)
        for name in sorted(modules):
            info = modules[name]
            info.imports = tuple(sorted(model._resolve_edges(info)))
        return model

    # ------------------------------------------------------------------
    # Graph resolution
    # ------------------------------------------------------------------

    def _known(self, module: str) -> bool:
        return module in self.modules

    def _edge_targets(self, module: str) -> List[str]:
        """Known modules an import of ``module`` executes (with ancestors)."""
        return [
            name
            for name in _ancestors(module, self.package)
            if self._known(name)
        ]

    def _resolve_edges(self, info: ModuleInfo) -> Set[str]:
        edges: Set[str] = set()
        package_parts = info.name.split(".")
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    edges.update(self._edge_targets(item.name))
            elif isinstance(node, ast.ImportFrom):
                base = self._import_from_base(node, package_parts)
                if base is None:
                    continue
                edges.update(self._edge_targets(base))
                for item in node.names:
                    if item.name != "*":
                        edges.update(self._edge_targets(f"{base}.{item.name}"))
            elif isinstance(node, (ast.Call, ast.Attribute)):
                target = node.func if isinstance(node, ast.Call) else node
                qualified = info.ctx.qualified_name(target)
                if qualified is not None:
                    edges.add(self._longest_module_prefix(qualified))
        edges.discard(info.name)
        edges.discard("")
        return edges

    def _import_from_base(
        self, node: ast.ImportFrom, package_parts: List[str]
    ) -> Optional[str]:
        """The absolute module a ``from ... import`` resolves against."""
        if node.level == 0:
            return node.module
        # Relative import: strip ``level`` components off the importing
        # module's package path (one level = the current package).
        base_parts = package_parts[: len(package_parts) - node.level]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _longest_module_prefix(self, qualified: str) -> str:
        """The longest known module that prefixes ``qualified`` ('' if none)."""
        parts = qualified.split(".")
        for depth in range(len(parts), 0, -1):
            candidate = ".".join(parts[:depth])
            if self._known(candidate):
                return candidate
        return ""

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable(
        self,
        roots: Iterable[str],
        exclude_prefixes: Tuple[str, ...] = (),
    ) -> List[str]:
        """Modules transitively reachable from ``roots``, sorted.

        Roots that are not present in the tree are ignored (a fixture
        tree need not mirror the full package).  ``exclude_prefixes``
        prunes both membership and traversal — an excluded module's own
        imports are never followed.
        """

        def excluded(name: str) -> bool:
            return any(
                name == prefix or name.startswith(prefix + ".")
                for prefix in exclude_prefixes
            )

        seen: Set[str] = set()
        frontier: List[str] = sorted(
            name for name in roots if self._known(name) and not excluded(name)
        )
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for edge in self.modules[name].imports:
                if edge not in seen and not excluded(edge):
                    frontier.append(edge)
        return sorted(seen)


def _build_module(ctx: ModuleContext) -> ModuleInfo:
    # The model's trees are normalized in place: docstrings are removed
    # once here so every fingerprint below can hash without deep-copying.
    # Audit rules only inspect executable statements, so they are
    # unaffected; anything needing original source has ``ctx.lines``.
    strip_docstrings(ctx.tree)
    markers = parse_markers(ctx.lines)
    symbols: Dict[str, SymbolInfo] = {}
    irrelevant: Dict[str, str] = {}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
        symbols[stmt.name] = SymbolInfo(
            name=stmt.name,
            kind=kind,
            line=stmt.lineno,
            fingerprint=fingerprint_node(stmt),
        )
        marker = marker_for(stmt, markers)
        if marker is not None:
            irrelevant[stmt.name] = marker.reason
    malformed = tuple(
        line for line in sorted(markers) if not markers[line].valid
    )
    return ModuleInfo(
        name=ctx.module,
        path=ctx.path,
        ctx=ctx,
        fingerprint=fingerprint_module(ctx.tree, markers),
        symbols=symbols,
        irrelevant=irrelevant,
        malformed_markers=malformed,
    )


def project_module_for_path(path: Path) -> str:
    """Dotted module name of ``path`` (re-exported lint helper)."""
    return module_for_path(path)
