"""Post-processing helpers shared by the experiments, plus `repro lint`.

* :mod:`repro.analysis.metrics` — normalisation and MTTF summaries;
* :mod:`repro.analysis.autocorrelation` — the Figure 6 autocorrelation;
* :mod:`repro.analysis.tables` — plain-text table rendering so every
  benchmark prints rows directly comparable to the paper's artefacts;
* :mod:`repro.analysis.lint` — the determinism-aware AST lint pass
  behind the ``repro lint`` CLI subcommand (imported lazily: linting a
  tree never drags the simulator in, and vice versa).
"""

from repro.analysis.autocorrelation import autocorrelation, decimate
from repro.analysis.metrics import geometric_mean, normalise_to
from repro.analysis.tables import format_table
from repro.analysis.traces import render_profile, render_series

__all__ = [
    "autocorrelation",
    "decimate",
    "format_table",
    "geometric_mean",
    "normalise_to",
    "render_profile",
    "render_series",
]
