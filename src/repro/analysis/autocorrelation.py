"""Autocorrelation and decimation for the sampling-interval study.

Figure 6 of the paper plots the autocorrelation of consecutive thermal
samples against the sampling interval: slow silicon thermals make
1-second samples highly correlated, and the correlation decays as the
interval grows — one of the trade-offs behind the 3 s design point.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def autocorrelation(series: Sequence[float], lag: int = 1) -> float:
    """Lag-``lag`` autocorrelation coefficient of a series.

    Parameters
    ----------
    series:
        Samples in time order; at least ``lag + 2`` samples required.
    lag:
        Lag in samples (1 = consecutive samples).

    Returns
    -------
    float
        Pearson correlation between the series and its lagged self;
        0.0 when the series is constant (no variance to correlate).
    """
    values = np.asarray(series, dtype=float)
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if len(values) < lag + 2:
        raise ValueError("series too short for the requested lag")
    head = values[:-lag]
    tail = values[lag:]
    head_std = head.std()
    tail_std = tail.std()
    if head_std == 0.0 or tail_std == 0.0:
        return 0.0
    return float(((head - head.mean()) * (tail - tail.mean())).mean() / (head_std * tail_std))


def decimate(series: Sequence[float], factor: int) -> List[float]:
    """Keep every ``factor``-th sample (simulates a slower sensor read)."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return list(series[::factor])
