"""Load-balancing thread scheduler with affinity support.

Approximates the two Linux placement behaviours the paper's motivation
(Section 3) hinges on, while always honouring affinity masks:

* **wake-time packing** — when overall utilisation is low, threads that
  wake from a dependent phase are placed on already-busy cores (Linux's
  wake-affine behaviour), which is why mpeg-style workloads end up "using
  only a few of the available cores" and show compounded heat bursts;
* **periodic load balancing** — run-queue imbalance triggers migrations,
  which is why face_rec-style workloads keep every core steadily busy
  (high temperature, low cycling) under the default policy.

Setting an :class:`~repro.sched.affinity.AffinityMapping` with singleton
masks disables both behaviours for the pinned threads — the fixed
assignment of the motivational experiment and of the learning agent's
actions.

The implementation is the hot path of the whole simulation (it runs once
per tick, every experiment is tens of thousands of ticks), so placement
state is maintained incrementally instead of being recomputed per
decision: ``_runnable_per_core`` mirrors what the seed implementation's
O(threads x cores) ``_runnable_count`` scans produced, and phase 3 builds
the per-core run queues in a single pass over the threads.  All decisions
are bit-identical to the reference behaviour preserved in
``tests/_reference_scheduler.py`` (see the randomized equivalence test).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.sched.affinity import AffinityMapping
from repro.sched.perf import PerfCounters
from repro.workloads.thread_model import SimThread, ThreadPhase

#: Phase singletons compared by identity on the hot path (one attribute
#: read instead of a property call per thread per pass).
_COMPUTE = ThreadPhase.COMPUTE
_BARRIER = ThreadPhase.BARRIER
_DONE = ThreadPhase.DONE

#: Bypasses the namedtuple's eval-generated ``__new__`` wrapper (one
#: Python frame per core per tick); produces an identical CoreLoad.
_new_load = tuple.__new__


class CoreLoad(NamedTuple):
    """Per-core load summary of one tick.

    Attributes
    ----------
    utilisation:
        Busy fraction estimate in [0, 1] fed to the governor.
    activity:
        Switching-activity factor in [0, 1] fed to the power model.
    num_runnable:
        Number of compute-phase threads on the core this tick.
    executed_cycles:
        CPU cycles actually granted to threads on this core.
    """

    utilisation: float
    activity: float
    num_runnable: int
    executed_cycles: float


class Scheduler:
    """Thread placement and execution for one chip.

    Parameters
    ----------
    num_cores:
        Number of cores on the chip.
    perf:
        Counter sink for migrations (optional).
    rebalance_period_s:
        How often the periodic load balancer runs.
    packing_threshold:
        Smoothed busy-fraction below which wake placement packs threads
        onto already-busy cores.
    pack_cap:
        Maximum runnable threads a core accepts while packing.
    idle_activity:
        Activity factor contributed by a waiting (non-runnable) thread.
    """

    def __init__(
        self,
        num_cores: int,
        perf: Optional[PerfCounters] = None,
        rebalance_period_s: float = 1.0,
        idle_pull_delay_s: float = 1.0,
        packing_threshold: float = 0.60,
        pack_cap: int = 3,
        idle_activity: float = 0.02,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.perf = perf if perf is not None else PerfCounters()
        self.rebalance_period_s = rebalance_period_s
        self.idle_pull_delay_s = idle_pull_delay_s
        self.packing_threshold = packing_threshold
        self.pack_cap = pack_cap
        self.idle_activity = idle_activity

        self._threads: List[SimThread] = []
        self._mapping: Optional[AffinityMapping] = None
        self._core_of: Dict[SimThread, int] = {}
        self._prev_runnable: Dict[SimThread, bool] = {}
        self._stalled: set = set()
        self._stall_s: List[float] = [0.0] * num_cores
        self._idle_for_s: List[float] = [0.0] * num_cores
        self._busy_ewma = 0.0
        self._since_rebalance_s = 0.0
        self._all_cores: List[int] = list(range(num_cores))
        # Mirror of the reference _runnable_count(core) for every core.
        # Refreshed from scratch on entry to tick/set_mapping/set_threads
        # (thread phases change outside the scheduler), then maintained
        # incrementally across placements within a call.
        self._runnable_per_core: List[int] = [0] * num_cores
        # Reusable phase-3 per-core run queues (cleared every tick).
        self._run_queues: List[List[SimThread]] = [[] for _ in range(num_cores)]
        # min(1.0, dt / 2.0) cached per tick length (dt is constant
        # within a run; recomputed only if a caller changes it).
        self._ewma_dt: Optional[float] = None
        self._ewma_weight = 0.0
        # Set by _place/_move while a tick is in flight: tells phase 3
        # whether the entry core snapshot is still valid (the common,
        # no-migration case skips one dict lookup per thread).
        self._cores_moved = False

    # ------------------------------------------------------------------
    # Thread and mapping management
    # ------------------------------------------------------------------

    @property
    def threads(self) -> List[SimThread]:
        """Threads currently under management."""
        return list(self._threads)

    @property
    def mapping(self) -> Optional[AffinityMapping]:
        """The active affinity mapping (None = OS default)."""
        return self._mapping

    def set_threads(
        self, threads: Sequence[SimThread], mapping: Optional[AffinityMapping] = None
    ) -> None:
        """Adopt a fresh thread set (application start or switch)."""
        self._threads = list(threads)
        self._core_of.clear()
        # Fresh threads are not "waking" — wake-affine packing applies
        # only to genuine sync->compute transitions later on.
        self._prev_runnable = {t: t.runnable for t in self._threads}
        self._stalled.clear()
        self._mapping = None
        self._refresh_runnable_counts()
        if mapping is not None:
            self.set_mapping(mapping)
        for thread in self._threads:
            self._place(thread, initial=True)

    def set_mapping(self, mapping: Optional[AffinityMapping]) -> None:
        """Apply a new affinity mapping, migrating violating threads.

        This is the simulator's ``pthread_setaffinity_np``: threads whose
        current core is outside their new mask are migrated immediately
        (and charged a migration), others stay put.
        """
        if mapping is not None:
            mapping.validate(self.num_cores)
            if self._threads and mapping.num_threads < len(self._threads):
                raise ValueError(
                    f"mapping covers {mapping.num_threads} threads, "
                    f"have {len(self._threads)}"
                )
        self._mapping = mapping
        self._refresh_runnable_counts()
        for thread in self._threads:
            core = self._core_of.get(thread)
            if core is not None and not self._allows(thread, core):
                self._migrate(thread)

    def stall_all(self, seconds: float) -> None:
        """Steal CPU time from every core (management overhead)."""
        if seconds < 0.0:
            raise ValueError("stall cannot be negative")
        stall_s = self._stall_s
        for core in range(self.num_cores):
            stall_s[core] += seconds

    # ------------------------------------------------------------------
    # Placement internals
    # ------------------------------------------------------------------

    def _allows(self, thread: SimThread, core: int) -> bool:
        if self._mapping is None:
            return True
        return self._mapping.allows(thread.thread_id, core)

    def _refresh_runnable_counts(self) -> None:
        """Recompute the per-core runnable counts from thread state.

        Stalled (just-migrated) threads still occupy the run queue for
        placement purposes; they are only excluded from execution.
        """
        counts = self._runnable_per_core
        for core in range(self.num_cores):
            counts[core] = 0
        core_of = self._core_of
        for thread in self._threads:
            if thread.phase is _COMPUTE:
                core = core_of.get(thread)
                if core is not None:
                    counts[core] += 1

    def _pick_core(self, thread: SimThread, wake: bool) -> int:
        """Choose a core for a (newly placed or waking) thread."""
        mapping = self._mapping
        if mapping is None:
            allowed = self._all_cores
        else:
            thread_id = thread.thread_id
            allowed = [c for c in self._all_cores if mapping.allows(thread_id, c)]
        if len(allowed) == 1:
            return allowed[0]
        counts = self._runnable_per_core
        if wake and self._busy_ewma < self.packing_threshold:
            # Wake-affine packing: prefer the busiest core with headroom,
            # consolidating onto low-id cores (all-idle tie), which is
            # how low-duty workloads end up "using only a few cores".
            cap = self.pack_cap
            best = -1
            busiest = -1
            for core in allowed:
                count = counts[core]
                if count < cap and count > best:
                    best = count
                    busiest = core
            if busiest >= 0:
                return busiest
        # Load balancing: least-loaded core, previous core breaking ties.
        least = counts[allowed[0]]
        for core in allowed:
            if counts[core] < least:
                least = counts[core]
        last = thread.last_core
        if (
            last is not None
            and counts[last] == least
            and (mapping is None or last in allowed)
        ):
            return last
        for core in allowed:
            if counts[core] == least:
                return core
        raise AssertionError("unreachable: some allowed core holds the minimum")

    def _place(self, thread: SimThread, initial: bool = False, wake: bool = False) -> None:
        core = self._pick_core(thread, wake=wake)
        previous = self._core_of.get(thread)
        self._core_of[thread] = core
        thread.core = core
        self._cores_moved = True
        if previous != core and thread.phase is _COMPUTE:
            counts = self._runnable_per_core
            if previous is not None:
                counts[previous] -= 1
            counts[core] += 1
        if previous is not None and previous != core:
            thread.last_core = previous
            self.perf.record_migration()
            self._stalled.add(thread)
        elif initial:
            thread.last_core = core

    def _migrate(self, thread: SimThread) -> None:
        self._place(thread, wake=False)

    def _first_movable(self, source: int, target: int) -> Optional[SimThread]:
        """First thread (in adoption order) movable ``source -> target``."""
        core_of = self._core_of
        stalled = self._stalled
        for thread in self._threads:
            if (
                thread.phase is _COMPUTE
                and core_of.get(thread) == source
                and self._allows(thread, target)
                and thread not in stalled
            ):
                return thread
        return None

    def _move(self, thread: SimThread, source: int, target: int) -> None:
        """Forcibly migrate a runnable thread (idle pull / rebalance)."""
        thread.last_core = source
        self._core_of[thread] = target
        thread.core = target
        self._cores_moved = True
        counts = self._runnable_per_core
        counts[source] -= 1
        counts[target] += 1
        self.perf.record_migration()
        self._stalled.add(thread)

    def _rebalance(self) -> None:
        """Move runnable threads from the busiest to the idlest core."""
        counts = self._runnable_per_core
        for _ in range(2):  # at most two migrations per balancing pass
            busiest = counts.index(max(counts))
            idlest = counts.index(min(counts))
            if counts[busiest] - counts[idlest] < 2:
                return
            thread = self._first_movable(busiest, idlest)
            if thread is None:
                return
            self._move(thread, busiest, idlest)

    # ------------------------------------------------------------------
    # Tick
    # ------------------------------------------------------------------

    def tick(self, frequencies_hz: Sequence[float], dt: float) -> List[CoreLoad]:
        """Place, balance and execute all threads for one tick.

        Parameters
        ----------
        frequencies_hz:
            Per-core clock frequencies for this tick.
        dt:
            Tick length in seconds.

        Returns
        -------
        list of :class:`CoreLoad`
            Per-core utilisation/activity the governor and power model
            consume.
        """
        num_cores = self.num_cores
        if len(frequencies_hz) != num_cores:
            raise ValueError(f"expected {num_cores} frequencies")
        if dt <= 0.0:
            raise ValueError("dt must be positive")

        # Thread phases changed since the last scheduler call (the
        # application ticked), so the incremental counts are stale.
        # One pass refreshes the counts and snapshots each thread's
        # phase and core: phases cannot change before execution (only
        # ``execute`` flips COMPUTE -> BARRIER mid-tick) and a thread's
        # own core cannot change before its phase-1 visit, so both
        # snapshots are valid exactly as long as they are used.
        threads = self._threads
        core_of = self._core_of
        prev_runnable = self._prev_runnable
        mapping = self._mapping
        counts = self._runnable_per_core
        for core in range(num_cores):
            counts[core] = 0
        self._cores_moved = False
        phases: List[ThreadPhase] = []
        cores: List[Optional[int]] = []
        phases_append = phases.append
        cores_append = cores.append
        for thread in threads:
            phase = thread.phase
            core = core_of.get(thread)
            phases_append(phase)
            cores_append(core)
            if phase is _COMPUTE and core is not None:
                counts[core] += 1

        # 1. Handle wakes and placement.
        if mapping is None:
            for thread, phase, core in zip(threads, phases, cores):
                if phase is _DONE:
                    continue
                if core is None:
                    self._place(thread, initial=True)
                elif phase is _COMPUTE and not prev_runnable[thread]:
                    self._place(thread, wake=True)
        else:
            for thread, phase, core in zip(threads, phases, cores):
                if phase is _DONE:
                    continue
                woke = phase is _COMPUTE and not prev_runnable[thread]
                if core is None:
                    self._place(thread, initial=True)
                elif not mapping.allows(thread.thread_id, core):
                    self._migrate(thread)
                elif woke and self._mapping_is_free(thread):
                    self._place(thread, wake=True)

        # 2a. Newly-idle balancing: a core that has sat idle for longer
        # than the pull delay steals a runnable thread from the busiest
        # core (Linux's idle balancing, with its reaction latency).
        idle_for_s = self._idle_for_s
        for core in range(num_cores):
            if counts[core] == 0:
                idle_for_s[core] += dt
            else:
                idle_for_s[core] = 0.0
        for core in range(num_cores):
            if idle_for_s[core] < self.idle_pull_delay_s:
                continue
            busiest = counts.index(max(counts))
            if counts[busiest] < 2:
                continue
            thread = self._first_movable(busiest, core)
            if thread is None:
                continue
            self._move(thread, busiest, core)
            idle_for_s[core] = 0.0

        # 2b. Periodic load balancing (only for non-pinned threads).
        self._since_rebalance_s += dt
        if self._since_rebalance_s >= self.rebalance_period_s:
            self._since_rebalance_s = 0.0
            self._rebalance()

        # 3. Execute: one pass builds the per-core run queues and waiting
        # counts, then each core grants its effective time slice.  The
        # same pass records each thread's pre-execution runnable flag in
        # ``prev_runnable`` (the phase snapshot is still valid here);
        # executed threads — the only ones whose phase can change below
        # — are corrected after their burst.
        run_queues = self._run_queues
        wait_counts = [0] * num_cores
        stalled = self._stalled
        has_stalled = bool(stalled)
        if not self._cores_moved:
            # No migration this tick: the entry core snapshot is intact.
            for thread, phase, core in zip(threads, phases, cores):
                if phase is _COMPUTE:
                    prev_runnable[thread] = True
                    if core is not None and (
                        not has_stalled or thread not in stalled
                    ):
                        run_queues[core].append(thread)
                else:
                    prev_runnable[thread] = False
                    if phase is not _DONE and core is not None:
                        wait_counts[core] += 1
        else:
            for thread, phase in zip(threads, phases):
                if phase is _COMPUTE:
                    prev_runnable[thread] = True
                    core = core_of.get(thread)
                    if core is not None and (
                        not has_stalled or thread not in stalled
                    ):
                        run_queues[core].append(thread)
                else:
                    prev_runnable[thread] = False
                    if phase is not _DONE:
                        core = core_of.get(thread)
                        if core is not None:
                            wait_counts[core] += 1

        stall_s = self._stall_s
        idle_activity = self.idle_activity
        record_execution = self.perf.record_execution
        loads: List[CoreLoad] = []
        loads_append = loads.append
        busy_cores = 0
        for core in range(num_cores):
            pending = stall_s[core]
            stall = pending if pending < dt else dt
            stall_s[core] = pending - stall
            effective_dt = dt - stall
            runnable = run_queues[core]
            num_runnable = len(runnable)
            num_waiting = wait_counts[core]
            executed = 0.0
            if num_runnable:
                busy_cores += 1
                share = effective_dt / num_runnable
                cycles = frequencies_hz[core] * share
                for thread in runnable:
                    # Inlined SimThread.execute: queue members are in
                    # COMPUTE by construction, so its phase guard is
                    # vacuous here.
                    remaining = thread.remaining_cycles - cycles
                    thread.remaining_cycles = remaining
                    if remaining <= 0.0:
                        thread.phase = _BARRIER
                    executed += cycles
                record_execution(executed)
            scale = effective_dt / dt
            utilisation = (num_runnable * 1.0 + num_waiting * 0.03) * scale + (
                stall / dt
            )
            if utilisation > 1.0:
                utilisation = 1.0
            if num_runnable:
                # Threads whose burst just ended (execute flipped them
                # to BARRIER) contribute activity_low, exactly like the
                # ``thread.activity`` property the reference sums; the
                # pass also fixes up ``prev_runnable`` with the
                # post-execution flag.  ``total`` starts as int 0 to
                # mirror ``sum()`` bit for bit.
                total = 0
                for thread in runnable:
                    spec = thread.spec
                    if thread.phase is _COMPUTE:
                        total = total + spec.activity_high
                        prev_runnable[thread] = True
                    else:
                        total = total + spec.activity_low
                        prev_runnable[thread] = False
                activity = total / num_runnable
                activity *= scale
            else:
                activity = 0.0
            activity = activity + idle_activity * num_waiting
            if activity > 1.0:
                activity = 1.0
            loads_append(
                _new_load(CoreLoad, (utilisation, activity, num_runnable, executed))
            )
            runnable.clear()

        # 4. Bookkeeping for the next tick.
        busy_fraction = busy_cores / num_cores
        if dt != self._ewma_dt:
            self._ewma_dt = dt
            self._ewma_weight = min(1.0, dt / 2.0)  # ~2 s smoothing
        self._busy_ewma += self._ewma_weight * (busy_fraction - self._busy_ewma)
        if has_stalled:
            stalled.clear()
        return loads

    def _mapping_is_free(self, thread: SimThread) -> bool:
        """Whether the thread has more than one allowed core."""
        if self._mapping is None:
            return True
        mask = self._mapping.mask_for(thread.thread_id)
        return mask is None or len(mask) > 1

    # ------------------------------------------------------------------
    # Introspection (tests, experiments)
    # ------------------------------------------------------------------

    def core_of(self, thread: SimThread) -> Optional[int]:
        """Core a thread currently occupies."""
        return self._core_of.get(thread)

    def runnable_counts(self) -> List[int]:
        """Per-core runnable-thread counts."""
        self._refresh_runnable_counts()
        return list(self._runnable_per_core)

    @property
    def busy_ewma(self) -> float:
        """Smoothed busy-core fraction driving the packing decision."""
        return self._busy_ewma
