"""Operating-system layer: scheduling, affinity, governors, counters.

The paper's controller actuates through two Linux mechanisms — affinity
masks (``pthread_setaffinity_np``) and cpufreq governors (``cpufreq-set``)
— and observes through perf counters.  This package models that layer:

* :mod:`repro.sched.affinity` — affinity masks and the restricted set of
  thread-to-core mappings the agent chooses from (Section 5.1);
* :mod:`repro.sched.scheduler` — a load-balancing thread scheduler that
  approximates Linux's default placement (wake-time packing at low load,
  periodic rebalancing) while always honouring affinity masks;
* :mod:`repro.sched.governors` — ondemand, conservative, performance,
  powersave and userspace frequency governors;
* :mod:`repro.sched.perf` — synthetic cache-miss / page-fault counters
  (Figure 6's overhead metrics).
"""

from repro.sched.affinity import AffinityMapping, MAPPING_PRESETS, mapping_by_name
from repro.sched.governors import (
    ConservativeGovernor,
    Governor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
    make_governor,
)
from repro.sched.perf import PerfCounters
from repro.sched.scheduler import CoreLoad, Scheduler

__all__ = [
    "AffinityMapping",
    "ConservativeGovernor",
    "CoreLoad",
    "Governor",
    "MAPPING_PRESETS",
    "OndemandGovernor",
    "PerfCounters",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "Scheduler",
    "UserspaceGovernor",
    "make_governor",
    "mapping_by_name",
]
