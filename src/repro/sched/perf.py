"""Synthetic performance counters (the simulator's ``perf``).

Figure 6 of the paper uses cache-misses and page-faults to quantify the
*overhead of the management layer itself*: every sensor-sampling event
and every thread migration pollutes caches and touches kernel pages, so
both counters fall as the sampling interval grows.  The counters here are
driven by exactly those events, plus a small execution baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Accumulating event counters for one simulation run."""

    #: Cache misses charged per sensor-sampling event.
    misses_per_sample: float = 5.0e4
    #: Page faults charged per sensor-sampling event.
    faults_per_sample: float = 1.0e3
    #: Cache misses charged per thread migration (cold-cache refill).
    misses_per_migration: float = 2.0e4
    #: Page faults charged per thread migration.
    faults_per_migration: float = 1.5e2
    #: Cache misses charged per learning-agent decision event.
    misses_per_decision: float = 1.0e4
    #: Baseline cache misses per executed cycle.
    misses_per_cycle: float = 1.0e-9

    cache_misses: float = field(default=0.0, init=False)
    page_faults: float = field(default=0.0, init=False)
    migrations: int = field(default=0, init=False)
    sample_events: int = field(default=0, init=False)
    decision_events: int = field(default=0, init=False)
    executed_cycles: float = field(default=0.0, init=False)

    def record_execution(self, cycles: float) -> None:
        """Charge the baseline cost of executing ``cycles`` CPU cycles."""
        if cycles < 0.0:
            raise ValueError("cycles cannot be negative")
        self.executed_cycles += cycles
        self.cache_misses += cycles * self.misses_per_cycle

    def record_migration(self) -> None:
        """Charge one thread migration."""
        self.migrations += 1
        self.cache_misses += self.misses_per_migration
        self.page_faults += self.faults_per_migration

    def record_sample_event(self) -> None:
        """Charge one sensor-sampling event (all sensors read at once)."""
        self.sample_events += 1
        self.cache_misses += self.misses_per_sample
        self.page_faults += self.faults_per_sample

    def record_decision_event(self) -> None:
        """Charge one learning-agent decision epoch."""
        self.decision_events += 1
        self.cache_misses += self.misses_per_decision
