"""Affinity masks and the restricted mapping set of Section 5.1.

An :class:`AffinityMapping` assigns each thread a mask — the set of cores
it may run on (``None`` means "any core", i.e. leave the decision to the
OS).  The number of possible mappings grows exponentially with threads
and cores, so, exactly as the paper does, only a small set of structured
alternatives is exposed to the learning agent: the OS default, paired,
spread, clustered-on-two, clustered-on-three and half-split shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: A mask is the set of allowed cores, or None for "all cores".
Mask = Optional[FrozenSet[int]]


@dataclass(frozen=True, eq=False)
class AffinityMapping:
    """Per-thread affinity masks.

    Two mappings are equal when their masks are equal — the name is a
    label, not part of the constraint — so a supervisor that rebuilds an
    equal-but-distinct mapping still verifies as "in force".

    Attributes
    ----------
    name:
        Human-readable identifier (used in logs and experiment tables).
    masks:
        One mask per thread; ``None`` entries leave that thread to the
        OS's default placement.
    """

    name: str
    masks: Tuple[Mask, ...]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffinityMapping):
            return NotImplemented
        return self.masks == other.masks

    def __hash__(self) -> int:
        return hash(self.masks)

    @property
    def num_threads(self) -> int:
        """Number of threads the mapping describes."""
        return len(self.masks)

    def mask_for(self, thread_id: int) -> Mask:
        """The mask of one thread (``None`` = any core)."""
        return self.masks[thread_id]

    def allows(self, thread_id: int, core: int) -> bool:
        """Whether the thread may run on the core."""
        mask = self.masks[thread_id]
        return mask is None or core in mask

    def validate(self, num_cores: int) -> None:
        """Raise if any mask references a core outside the platform."""
        for mask in self.masks:
            if mask is None:
                continue
            if not mask:
                raise ValueError("empty affinity mask")
            if any(core < 0 or core >= num_cores for core in mask):
                raise ValueError(f"mask {sorted(mask)} outside 0..{num_cores - 1}")

    @classmethod
    def os_default(cls, num_threads: int) -> "AffinityMapping":
        """The unconstrained mapping (Linux decides everything)."""
        return cls("os_default", tuple(None for _ in range(num_threads)))

    @classmethod
    def from_assignment(
        cls, name: str, cores_per_thread: Sequence[int]
    ) -> "AffinityMapping":
        """Pin each thread to a single core.

        Parameters
        ----------
        name:
            Mapping identifier.
        cores_per_thread:
            ``cores_per_thread[i]`` is the core thread ``i`` is pinned to.
        """
        masks = tuple(frozenset({core}) for core in cores_per_thread)
        return cls(name, masks)


def _half_split(num_threads: int) -> AffinityMapping:
    """First half of the threads on cores {0,1}, second half on {2,3}."""
    first = frozenset({0, 1})
    second = frozenset({2, 3})
    masks = tuple(
        first if tid < num_threads // 2 else second for tid in range(num_threads)
    )
    return AffinityMapping("half_split", masks)


def _cycle(pattern: Sequence[int], num_threads: int) -> List[int]:
    """Repeat an assignment pattern to cover ``num_threads`` threads."""
    return [pattern[tid % len(pattern)] for tid in range(num_threads)]


def _build_presets(num_threads: int = 6) -> Dict[str, AffinityMapping]:
    """The restricted mapping alternatives for threads on 4 cores."""
    presets = {
        # Leave everything to the OS (what Linux does by default).
        "os_default": AffinityMapping.os_default(num_threads),
        # The motivational experiment's fixed assignment: two cores run
        # two threads each, two cores run one thread each (Section 3).
        "paired_2211": AffinityMapping.from_assignment(
            "paired_2211", _cycle([0, 0, 1, 1, 2, 3], num_threads)
        ),
        # Round-robin spread: as even as the thread count allows.
        "spread_rr": AffinityMapping.from_assignment(
            "spread_rr", _cycle([0, 1, 2, 3], num_threads)
        ),
        # Alternate-pairing spread, heats the other diagonal of the die.
        "spread_alt": AffinityMapping.from_assignment(
            "spread_alt", _cycle([2, 3, 0, 1], num_threads)
        ),
        # All threads on two cores: half the die stays cool.
        "cluster_2": AffinityMapping.from_assignment(
            "cluster_2", _cycle([0, 1], num_threads)
        ),
        # All threads on three cores.
        "cluster_3": AffinityMapping.from_assignment(
            "cluster_3", _cycle([0, 1, 2], num_threads)
        ),
        # Halves of the thread pool on halves of the die; the scheduler
        # still balances within each half.
        "half_split": _half_split(num_threads),
    }
    return presets


#: Name -> mapping for the default 6-thread configuration.
MAPPING_PRESETS: Dict[str, AffinityMapping] = _build_presets()

#: Preset names in a stable order (the action-space order).
MAPPING_ORDER: Tuple[str, ...] = (
    "os_default",
    "spread_rr",
    "paired_2211",
    "cluster_3",
    "half_split",
    "cluster_2",
    "spread_alt",
)


def mapping_by_name(name: str, num_threads: int = 6) -> AffinityMapping:
    """Look up a preset mapping, rebuilt for a non-default thread count.

    Raises
    ------
    KeyError
        For an unknown preset name.
    """
    presets = MAPPING_PRESETS if num_threads == 6 else _build_presets(num_threads)
    if name not in presets:
        raise KeyError(f"unknown mapping {name!r}")
    return presets[name]
