"""CPU frequency governors (cpufreq power schemes).

The five Linux governors the paper's action space uses (Section 5.1):

* ``performance`` — always the highest operating point;
* ``powersave`` — always the lowest;
* ``userspace`` — a fixed user-chosen frequency (the agent gets three);
* ``ondemand`` — jump to the maximum when utilisation crosses the up
  threshold, otherwise scale proportionally to demand (Pallipadi &
  Starikovskiy, paper ref. [13]);
* ``conservative`` — like ondemand but moves one ladder rung at a time.

Governors are per-core: ``update`` maps a utilisation vector to a
frequency vector, statefully for the graded governors.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.power.opp import OppLadder


class Governor:
    """Base class of all frequency governors."""

    #: cpufreq-style name; subclasses override.
    name = "base"

    #: Whether the governor scales frequencies from observed utilisation.
    #: Adaptive governors accept :meth:`inherit_frequencies` on a governor
    #: switch so the clock ramps from where the previous governor left it;
    #: fixed-point governors (performance/powersave/userspace) ignore the
    #: previous state by definition.
    adaptive = False

    def __init__(self, ladder: OppLadder, num_cores: int) -> None:
        self.ladder = ladder
        self.num_cores = num_cores
        self._frequencies: List[float] = [ladder.min_point.frequency_hz] * num_cores

    def frequencies(self) -> List[float]:
        """Current per-core frequencies in hertz."""
        return list(self._frequencies)

    def inherit_frequencies(self, frequencies_hz: Sequence[float]) -> None:
        """Adopt the per-core frequencies a predecessor governor set.

        Called on a governor switch so an adaptive governor starts from
        the running clocks instead of teleporting to its reset state.
        Fixed-frequency governors override their state on the next
        ``update`` anyway, but the base implementation is safe for all.
        """
        if len(frequencies_hz) != self.num_cores:
            raise ValueError(f"expected {self.num_cores} frequencies")
        self._frequencies = list(frequencies_hz)

    def reset(self) -> None:
        """Return every core to the governor's starting frequency."""
        self._frequencies = [self.ladder.min_point.frequency_hz] * self.num_cores

    def update(self, utilisations: Sequence[float]) -> List[float]:
        """Advance one governor evaluation and return new frequencies.

        Parameters
        ----------
        utilisations:
            Per-core utilisation in [0, 1] over the last evaluation
            period.
        """
        raise NotImplementedError


class PerformanceGovernor(Governor):
    """Pin every core at the maximum operating point."""

    name = "performance"

    def update(self, utilisations: Sequence[float]) -> List[float]:
        self._frequencies = [self.ladder.max_point.frequency_hz] * self.num_cores
        return self.frequencies()


class PowersaveGovernor(Governor):
    """Pin every core at the minimum operating point."""

    name = "powersave"

    def update(self, utilisations: Sequence[float]) -> List[float]:
        self._frequencies = [self.ladder.min_point.frequency_hz] * self.num_cores
        return self.frequencies()


class UserspaceGovernor(Governor):
    """Hold every core at a fixed user-requested frequency.

    Parameters
    ----------
    frequency_hz:
        The requested frequency; snapped to the nearest operating point,
        as ``cpufreq-set -f`` does.
    """

    def __init__(self, ladder: OppLadder, num_cores: int, frequency_hz: float) -> None:
        super().__init__(ladder, num_cores)
        self._target = ladder.nearest(frequency_hz).frequency_hz
        self._frequencies = [self._target] * num_cores

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"userspace@{self._target / 1e9:.1f}GHz"

    @property
    def target_frequency_hz(self) -> float:
        """The held frequency in hertz."""
        return self._target

    def update(self, utilisations: Sequence[float]) -> List[float]:
        self._frequencies = [self._target] * self.num_cores
        return self.frequencies()


class OndemandGovernor(Governor):
    """Linux's default on-demand governor.

    Jumps straight to the maximum frequency when utilisation exceeds
    ``up_threshold`` and otherwise picks the lowest frequency that keeps
    projected utilisation below the threshold — the classic ondemand
    policy.
    """

    name = "ondemand"
    adaptive = True

    def __init__(
        self, ladder: OppLadder, num_cores: int, up_threshold: float = 0.80
    ) -> None:
        super().__init__(ladder, num_cores)
        if not 0.0 < up_threshold <= 1.0:
            raise ValueError("up_threshold must be in (0, 1]")
        self.up_threshold = up_threshold
        # The ladder is immutable; cache what the per-tick update needs
        # (plain floats, so the scan below has no attribute reads).
        self._ascending_hz = ladder.frequencies()
        self._f_max = ladder.max_point.frequency_hz

    def update(self, utilisations: Sequence[float]) -> List[float]:
        new_frequencies = []
        append = new_frequencies.append
        frequencies = self._frequencies
        ascending = self._ascending_hz
        f_max = self._f_max
        up_threshold = self.up_threshold
        for core, util in enumerate(utilisations):
            if util >= up_threshold:
                append(f_max)
            else:
                # Demand in cycle terms at the current frequency, mapped
                # to the smallest frequency that keeps util below the
                # threshold (an inlined ladder.ceil, same 1 Hz slack).
                bound = util * frequencies[core] / up_threshold - 1.0
                for frequency in ascending:
                    if frequency >= bound:
                        append(frequency)
                        break
                else:
                    append(f_max)
        self._frequencies = new_frequencies
        return self.frequencies()


class ConservativeGovernor(Governor):
    """Graded governor: one ladder rung per evaluation.

    Steps a core up one operating point when utilisation exceeds the up
    threshold, down one when it falls below the down threshold.
    """

    name = "conservative"
    adaptive = True

    def __init__(
        self,
        ladder: OppLadder,
        num_cores: int,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ) -> None:
        super().__init__(ladder, num_cores)
        if not 0.0 <= down_threshold < up_threshold <= 1.0:
            raise ValueError("need 0 <= down < up <= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        # Exact-hit rung lookup; off-ladder frequencies (tolerant 1 Hz
        # matching) fall back to the linear ladder.step scan.
        self._index_of_hz = {
            point.frequency_hz: index for index, point in enumerate(ladder.points)
        }
        self._ascending_hz = ladder.frequencies()

    def _step_hz(self, current: float, delta: int) -> float:
        index = self._index_of_hz.get(current)
        if index is None:
            return self.ladder.step(current, delta).frequency_hz
        ascending = self._ascending_hz
        clamped = index + delta
        if clamped < 0:
            clamped = 0
        elif clamped >= len(ascending):
            clamped = len(ascending) - 1
        return ascending[clamped]

    def update(self, utilisations: Sequence[float]) -> List[float]:
        new_frequencies = []
        append = new_frequencies.append
        frequencies = self._frequencies
        up_threshold = self.up_threshold
        down_threshold = self.down_threshold
        step_hz = self._step_hz
        for core, util in enumerate(utilisations):
            current = frequencies[core]
            if util >= up_threshold:
                append(step_hz(current, +1))
            elif util <= down_threshold:
                append(step_hz(current, -1))
            else:
                append(current)
        self._frequencies = new_frequencies
        return self.frequencies()


def make_governor(
    name: str,
    ladder: OppLadder,
    num_cores: int,
    userspace_frequency_hz: float | None = None,
) -> Governor:
    """Instantiate a governor by cpufreq name.

    Parameters
    ----------
    name:
        One of ``ondemand``, ``conservative``, ``performance``,
        ``powersave``, ``userspace``.
    ladder:
        The platform's OPP ladder.
    num_cores:
        Number of cores governed.
    userspace_frequency_hz:
        Required for ``userspace``; ignored otherwise.
    """
    if name == "ondemand":
        return OndemandGovernor(ladder, num_cores)
    if name == "conservative":
        return ConservativeGovernor(ladder, num_cores)
    if name == "performance":
        return PerformanceGovernor(ladder, num_cores)
    if name == "powersave":
        return PowersaveGovernor(ladder, num_cores)
    if name == "userspace":
        if userspace_frequency_hz is None:
            raise ValueError("userspace governor needs a frequency")
        return UserspaceGovernor(ladder, num_cores, userspace_frequency_hz)
    raise KeyError(f"unknown governor {name!r}")
