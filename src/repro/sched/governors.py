"""CPU frequency governors (cpufreq power schemes).

The five Linux governors the paper's action space uses (Section 5.1):

* ``performance`` — always the highest operating point;
* ``powersave`` — always the lowest;
* ``userspace`` — a fixed user-chosen frequency (the agent gets three);
* ``ondemand`` — jump to the maximum when utilisation crosses the up
  threshold, otherwise scale proportionally to demand (Pallipadi &
  Starikovskiy, paper ref. [13]);
* ``conservative`` — like ondemand but moves one ladder rung at a time.

Governors are per-core: ``update`` maps a utilisation vector to a
frequency vector, statefully for the graded governors.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.power.opp import OppLadder


class Governor:
    """Base class of all frequency governors."""

    #: cpufreq-style name; subclasses override.
    name = "base"

    def __init__(self, ladder: OppLadder, num_cores: int) -> None:
        self.ladder = ladder
        self.num_cores = num_cores
        self._frequencies: List[float] = [ladder.min_point.frequency_hz] * num_cores

    def frequencies(self) -> List[float]:
        """Current per-core frequencies in hertz."""
        return list(self._frequencies)

    def reset(self) -> None:
        """Return every core to the governor's starting frequency."""
        self._frequencies = [self.ladder.min_point.frequency_hz] * self.num_cores

    def update(self, utilisations: Sequence[float]) -> List[float]:
        """Advance one governor evaluation and return new frequencies.

        Parameters
        ----------
        utilisations:
            Per-core utilisation in [0, 1] over the last evaluation
            period.
        """
        raise NotImplementedError


class PerformanceGovernor(Governor):
    """Pin every core at the maximum operating point."""

    name = "performance"

    def update(self, utilisations: Sequence[float]) -> List[float]:
        self._frequencies = [self.ladder.max_point.frequency_hz] * self.num_cores
        return self.frequencies()


class PowersaveGovernor(Governor):
    """Pin every core at the minimum operating point."""

    name = "powersave"

    def update(self, utilisations: Sequence[float]) -> List[float]:
        self._frequencies = [self.ladder.min_point.frequency_hz] * self.num_cores
        return self.frequencies()


class UserspaceGovernor(Governor):
    """Hold every core at a fixed user-requested frequency.

    Parameters
    ----------
    frequency_hz:
        The requested frequency; snapped to the nearest operating point,
        as ``cpufreq-set -f`` does.
    """

    def __init__(self, ladder: OppLadder, num_cores: int, frequency_hz: float) -> None:
        super().__init__(ladder, num_cores)
        self._target = ladder.nearest(frequency_hz).frequency_hz
        self._frequencies = [self._target] * num_cores

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"userspace@{self._target / 1e9:.1f}GHz"

    @property
    def target_frequency_hz(self) -> float:
        """The held frequency in hertz."""
        return self._target

    def update(self, utilisations: Sequence[float]) -> List[float]:
        self._frequencies = [self._target] * self.num_cores
        return self.frequencies()


class OndemandGovernor(Governor):
    """Linux's default on-demand governor.

    Jumps straight to the maximum frequency when utilisation exceeds
    ``up_threshold`` and otherwise picks the lowest frequency that keeps
    projected utilisation below the threshold — the classic ondemand
    policy.
    """

    name = "ondemand"

    def __init__(
        self, ladder: OppLadder, num_cores: int, up_threshold: float = 0.80
    ) -> None:
        super().__init__(ladder, num_cores)
        if not 0.0 < up_threshold <= 1.0:
            raise ValueError("up_threshold must be in (0, 1]")
        self.up_threshold = up_threshold

    def update(self, utilisations: Sequence[float]) -> List[float]:
        new_frequencies = []
        f_max = self.ladder.max_point.frequency_hz
        for core, util in enumerate(utilisations):
            if util >= self.up_threshold:
                new_frequencies.append(f_max)
            else:
                # Demand in cycle terms at the current frequency, mapped
                # to the smallest frequency that keeps util below the
                # threshold.
                demand_hz = util * self._frequencies[core] / self.up_threshold
                new_frequencies.append(self.ladder.ceil(demand_hz).frequency_hz)
        self._frequencies = new_frequencies
        return self.frequencies()


class ConservativeGovernor(Governor):
    """Graded governor: one ladder rung per evaluation.

    Steps a core up one operating point when utilisation exceeds the up
    threshold, down one when it falls below the down threshold.
    """

    name = "conservative"

    def __init__(
        self,
        ladder: OppLadder,
        num_cores: int,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ) -> None:
        super().__init__(ladder, num_cores)
        if not 0.0 <= down_threshold < up_threshold <= 1.0:
            raise ValueError("need 0 <= down < up <= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def update(self, utilisations: Sequence[float]) -> List[float]:
        new_frequencies = []
        for core, util in enumerate(utilisations):
            current = self._frequencies[core]
            if util >= self.up_threshold:
                new_frequencies.append(self.ladder.step(current, +1).frequency_hz)
            elif util <= self.down_threshold:
                new_frequencies.append(self.ladder.step(current, -1).frequency_hz)
            else:
                new_frequencies.append(current)
        self._frequencies = new_frequencies
        return self.frequencies()


def make_governor(
    name: str,
    ladder: OppLadder,
    num_cores: int,
    userspace_frequency_hz: float | None = None,
) -> Governor:
    """Instantiate a governor by cpufreq name.

    Parameters
    ----------
    name:
        One of ``ondemand``, ``conservative``, ``performance``,
        ``powersave``, ``userspace``.
    ladder:
        The platform's OPP ladder.
    num_cores:
        Number of cores governed.
    userspace_frequency_hz:
        Required for ``userspace``; ignored otherwise.
    """
    if name == "ondemand":
        return OndemandGovernor(ladder, num_cores)
    if name == "conservative":
        return ConservativeGovernor(ladder, num_cores)
    if name == "performance":
        return PerformanceGovernor(ladder, num_cores)
    if name == "powersave":
        return PowersaveGovernor(ladder, num_cores)
    if name == "userspace":
        if userspace_frequency_hz is None:
            raise ValueError("userspace governor needs a frequency")
        return UserspaceGovernor(ladder, num_cores, userspace_frequency_hz)
    raise KeyError(f"unknown governor {name!r}")
