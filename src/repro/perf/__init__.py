"""Performance instrumentation for the simulation's tick loop.

Two complementary tools:

* :mod:`repro.perf.timer` — a :class:`~repro.perf.timer.SectionTimer`
  the engine (and chip) feed per-phase wall-clock accounting into, so a
  run can report where its tick time goes
  (schedule/app/governor/power/thermal/sensors/manager);
* :mod:`repro.perf.bench` — the shared ``repro bench`` / ``repro
  ensemble bench`` harness: runs the representative workload mix,
  measures scalar ticks/sec (and the instrumented per-phase split) for
  ``BENCH_PR3.json``, and ensemble trajectory-ticks/sec against the
  serial baseline for ``BENCH_PR7.json``, through one timed-loop and
  regression-gate implementation.

Only the timer is re-exported here: the bench module imports the whole
simulation stack (which itself imports the timer), so it must be pulled
in explicitly as ``repro.perf.bench`` to keep imports acyclic.

This is wall-clock tooling about the *simulator*; the simulated
platform's own counters live in :mod:`repro.sched.perf`.
"""

from repro.perf.timer import SectionTimer

__all__ = ["SectionTimer"]
