"""Lightweight per-section wall-clock accounting for the tick loop.

A :class:`SectionTimer` accumulates elapsed ``time.perf_counter``
seconds into named sections.  The engine brackets each phase of
``Simulation.step`` with :meth:`now`/:meth:`lap` calls; the chip does
the same for its power-evaluation and thermal-integration halves.  When
no timer is attached the hot loop pays exactly one ``is not None`` check
per phase, so instrumentation is free unless asked for.
"""

from __future__ import annotations

import math
import time
from typing import Dict


class SectionTimer:
    """Accumulates wall-clock seconds per named tick-loop section."""

    __slots__ = ("_totals", "ticks")

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self.ticks = 0

    @staticmethod
    def now() -> float:
        """A monotonic timestamp to pass back into :meth:`lap`."""
        return time.perf_counter()

    def lap(self, section: str, since: float) -> float:
        """Charge the time since ``since`` to ``section``.

        Returns the current timestamp so consecutive phases chain:
        ``mark = timer.lap("schedule", mark)``.

        Raises
        ------
        ValueError
            On an empty section name, or a ``since`` mark that is not a
            finite past timestamp.  A mark from the future means the
            call sites are nested or out of order — charging the
            negative duration would silently corrupt the totals.
        """
        now = time.perf_counter()
        if not section:
            raise ValueError("section name must be non-empty")
        elapsed = now - since
        if not math.isfinite(elapsed) or elapsed < 0.0:
            raise ValueError(
                f"lap({section!r}) got a mark {since!r} that is not a finite "
                "past timestamp; laps must chain from now()/a previous lap()"
            )
        totals = self._totals
        totals[section] = totals.get(section, 0.0) + elapsed
        return now

    def add(self, section: str, seconds: float) -> None:
        """Charge an externally measured duration to ``section``.

        Raises
        ------
        ValueError
            On an empty section name or a duration that is negative,
            NaN or infinite.
        """
        if not section:
            raise ValueError("section name must be non-empty")
        if not math.isfinite(seconds) or seconds < 0.0:
            raise ValueError(
                f"add({section!r}) needs a finite non-negative duration, "
                f"got {seconds!r}"
            )
        totals = self._totals
        totals[section] = totals.get(section, 0.0) + seconds

    def count_tick(self) -> None:
        """Record that one full tick passed through the loop."""
        self.ticks += 1

    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per section (sorted by cost, descending)."""
        return dict(
            sorted(self._totals.items(), key=lambda item: item[1], reverse=True)
        )

    def fractions(self) -> Dict[str, float]:
        """Each section's share of the total accounted time."""
        total = sum(self._totals.values())
        if total <= 0.0:
            return {section: 0.0 for section in self._totals}
        return {
            section: seconds / total for section, seconds in self.totals().items()
        }

    def reset(self) -> None:
        """Zero all sections and the tick count."""
        self._totals.clear()
        self.ticks = 0
