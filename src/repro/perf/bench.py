"""The ``repro bench`` harnesses: scalar tick loop + vectorized ensemble.

Both benchmarks share one measurement core — the same workload mix
(:data:`WORKLOADS`), the same warmup (:data:`WARMUP_TICKS`), the same
timed-loop/best-of-N machinery (:func:`_timed_ticks`,
:func:`_best_rate`) and the same report/regression plumbing
(:func:`write_report`, :func:`check_regression`) — so their numbers are
directly comparable.

``repro bench`` (:func:`run_bench`) measures the scalar
``Simulation.step`` loop and reports, per workload:

* **ticks/sec** — wall-clock throughput with no instrumentation
  attached (best of N fresh runs, after a warmup);
* **speedup vs. seed** — against :data:`SEED_TICKS_PER_S`, the numbers
  measured on the seed (pre fast-path) implementation with this same
  harness shape (200-tick warmup, best-of-3, 20k measured ticks);
* **per-phase split** — a second, instrumented run with a
  :class:`~repro.perf.timer.SectionTimer` attached: seconds and
  ticks/sec for schedule/app/governor/power/thermal/sensors/manager.

``repro ensemble bench`` (:func:`run_ensemble_bench`) measures the
vectorized :class:`~repro.ensemble.engine.EnsembleSimulation` against
the honest serial baseline — the scalar loop measured by this same
harness — and reports **trajectory-ticks/sec** (ensemble ticks/sec
times the member count): the aggregate simulation throughput a serial
sweep over the same member list achieves one trajectory at a time.

The ensemble report also carries the per-phase split of the vectorized
tick (the ensemble engine accepts the same
:class:`~repro.perf.timer.SectionTimer`) and a **shard-scaling**
section: the same complete ensemble job timed at several ``--jobs``
settings through :func:`repro.ensemble.shard.run_sharded_ensemble_job`
(:func:`measure_shard_scaling`) — results are bit-identical at every
shard count, so the section isolates pure execution scaling, bounded by
the recorded ``cpu_count``.

``repro ensemble bench --grids`` additionally measures the **grid
planner** end to end (:func:`measure_grid_speedup`): the same
seed-replicated experiment grid — scalar cells, exactly as an
experiment module submits them — run through a scalar serial engine and
through an ``ensemble=True`` engine at several ``--jobs`` settings.
Results are bit-identical, so the section isolates the wall-clock win
of routing real grids through the vectorized engine.

Scalar reports are written to ``BENCH_PR3.json``, ensemble reports to
``BENCH_PR8.json`` and grid-planner reports (the ensemble report plus
the grid section) to ``BENCH_PR9.json``; CI reruns them in ``--quick``
mode and fails when a shared metric regresses more than 30% below the
committed numbers (see ``--compare``/:func:`compare_reports`) or the
grid speedup falls below a floor (:func:`check_grid_speedup`).
"""

from __future__ import annotations

import json
import os
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.runner import _make_app, build_manager
from repro.ioutil import atomic_write_text
from repro.perf.timer import SectionTimer
from repro.soc.simulator import Simulation

#: Ticks stepped before the measured window (JIT-free Python still
#: benefits: allocator, branch history, warm caches).
WARMUP_TICKS = 200

#: Seed-implementation throughput (ticks/sec) measured with this harness
#: at commit c4d2d17 (pre fast-path): 200-tick warmup, 20000 measured
#: ticks, best of 3, default platform, seed 1.  The denominators of every
#: speedup this module reports.
SEED_TICKS_PER_S: Dict[str, float] = {
    "tachyon/linux": 12012.4,
    "mpeg_dec/linux": 9899.0,
    "face_rec/proposed": 11396.9,
}


class BenchWorkload(NamedTuple):
    """One benchmarked (application, policy) pair."""

    key: str
    app: str
    policy: str


#: The default quad-core workload mix: one barrier app and one
#: work-queue app under the Linux default path (scheduler + ondemand
#: dominate), plus the full learning agent (manager on the tick path).
WORKLOADS: Tuple[BenchWorkload, ...] = (
    BenchWorkload("tachyon/linux", "tachyon", "linux"),
    BenchWorkload("mpeg_dec/linux", "mpeg_dec", "linux"),
    BenchWorkload("face_rec/proposed", "face_rec", "proposed"),
)


#: Default ensemble width benchmarked by ``repro ensemble bench``.
ENSEMBLE_MEMBERS = 256


def _build_simulation(app: str, policy: str, seed: int) -> Simulation:
    """An unprepared simulation mirroring the experiment runner's wiring.

    Left unprepared so the same builder serves both paths: the scalar
    harness prepares it itself, the ensemble engine adopts it fresh.
    """
    application = _make_app(app, None, seed=seed, scale=1.0)
    manager, governor, userspace_hz = build_manager(policy)
    return Simulation(
        [application],
        governor=governor,
        userspace_frequency_hz=userspace_hz,
        manager=manager,
        seed=seed,
        max_time_s=None,
    )


def _timed_ticks(step: Callable[[], bool], ticks: int) -> Tuple[int, float]:
    """The shared measurement core: step ``ticks`` times under the clock.

    ``step`` advances the system one tick and returns ``True`` to stop
    early (workload finished).  Returns ``(ticks_stepped, elapsed_s)``.
    Both the scalar and the ensemble bench measure through this one
    loop, so their rates are produced identically.
    """
    stepped = 0
    start = time.perf_counter()
    while stepped < ticks:
        stop = step()
        stepped += 1
        if stop:
            break
    return stepped, time.perf_counter() - start


def _best_rate(
    repeats: int, run_once: Callable[[], Tuple[int, float]]
) -> float:
    """Best ticks/sec over ``repeats`` fresh timed runs."""
    best = 0.0
    for _ in range(repeats):
        stepped, elapsed = run_once()
        if elapsed > 0.0:
            best = max(best, stepped / elapsed)
    return best


def _measure_once(
    app: str, policy: str, ticks: int, seed: int, timer: Optional[SectionTimer] = None
) -> Tuple[int, float]:
    """One fresh scalar run: warm up, then step ``ticks`` under the clock.

    Returns ``(ticks_stepped, elapsed_seconds)``; stops early if the
    application finishes (the tick counts below stay well inside every
    app's full length).
    """
    sim = _build_simulation(app, policy, seed)
    sim.prepare()
    if timer is not None:
        sim.attach_timer(timer)
    for _ in range(WARMUP_TICKS):
        sim.step()

    def step() -> bool:
        sim.step()
        return sim.current_app.done

    return _timed_ticks(step, ticks)


def _measure_ensemble_once(
    app: str,
    policy: str,
    members: int,
    ticks: int,
    seed: int,
    timer: Optional[SectionTimer] = None,
) -> Tuple[int, float]:
    """One fresh ensemble run: warm up, then step ``ticks`` under the clock.

    Each member is the same workload at a distinct seed (``seed``,
    ``seed + 1``, ...), matching how a real sweep varies its members.
    The measured loop includes the run-loop bookkeeping (``advance``),
    so the rate reflects end-to-end ensemble stepping.
    """
    from repro.ensemble.engine import EnsembleSimulation

    ensemble = EnsembleSimulation(
        [
            _build_simulation(app, policy, seed + offset)
            for offset in range(members)
        ]
    )
    ensemble.prepare()
    for _ in range(WARMUP_TICKS):
        ensemble.step()
        ensemble.advance()
    if timer is not None:
        ensemble.attach_timer(timer)

    def step() -> bool:
        ensemble.step()
        ensemble.advance()
        return not bool(ensemble.active.all())

    return _timed_ticks(step, ticks)


def measure_shard_scaling(
    app: str,
    policy: str,
    members: int,
    seed: int,
    jobs_list: Sequence[int],
    iteration_scale: float,
) -> Dict[str, Any]:
    """Wall-clock of one complete ensemble job at several shard counts.

    Runs the *same* :class:`EnsembleJobSpec` (uncached, to completion)
    through :func:`repro.ensemble.shard.run_sharded_ensemble_job` once
    per entry of ``jobs_list`` and reports elapsed seconds plus speedup
    over the first entry.  Results are bit-identical at every shard
    count, so this measures pure execution scaling; the attainable
    speedup is bounded by ``cpu_count`` (recorded in the report — on a
    single-core host the expected scaling is flat).
    """
    from repro.ensemble.shard import run_sharded_ensemble_job
    from repro.experiments.engine.scheduler import ExperimentEngine
    from repro.experiments.engine.spec import EnsembleJobSpec, workload_job

    spec = EnsembleJobSpec(
        members=tuple(
            workload_job(
                app,
                policy=policy,
                seed=seed + offset,
                iteration_scale=iteration_scale,
            )
            for offset in range(members)
        )
    )
    runs = []
    base_elapsed: Optional[float] = None
    for jobs in jobs_list:
        engine = ExperimentEngine(jobs=jobs, cache=None)
        start = time.perf_counter()
        report = run_sharded_ensemble_job(spec, engine, cache=None)
        elapsed = time.perf_counter() - start
        if not report.ok:
            raise RuntimeError(
                f"shard-scaling run failed at jobs={jobs}: {report.failures}"
            )
        if base_elapsed is None:
            base_elapsed = elapsed
        runs.append(
            {
                "jobs": jobs,
                "shards": report.shards,
                "elapsed_s": round(elapsed, 2),
                "speedup_vs_jobs1": (
                    round(base_elapsed / elapsed, 2) if elapsed > 0.0 else None
                ),
            }
        )
    return {
        "app": app,
        "policy": policy,
        "members": members,
        "iteration_scale": iteration_scale,
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }


#: The seed-replicated grid cells measured by the grid-planner section:
#: a governor-bound workload and an agent-bound one, mirroring how the
#: Monte Carlo study replicates (app, policy) cells across seed fleets.
GRID_CELLS: Tuple[Tuple[str, str], ...] = (
    ("tachyon", "linux"),
    ("mpeg_dec", "proposed"),
)


def measure_grid_speedup(
    cells: Sequence[Tuple[str, str]],
    seeds_per_cell: int,
    iteration_scale: float,
    seed: int = 1,
    jobs_list: Sequence[int] = (1,),
) -> Dict[str, Any]:
    """Wall-clock of one seed-replicated grid, scalar vs ensemble-routed.

    Builds the grid exactly as an experiment module would — one scalar
    :func:`workload_job` per (app, policy, seed) cell — runs it to
    completion through a serial scalar engine, then through an
    ``ensemble=True`` engine at each entry of ``jobs_list``, all
    uncached.  Every variant returns bit-identical summaries (the
    grid-equivalence suite proves it), so the reported speedup is pure
    execution throughput: vectorization within a shard times process
    parallelism across shards, bounded by the recorded ``cpu_count``.
    """
    from repro.experiments.engine.scheduler import ExperimentEngine
    from repro.experiments.engine.spec import workload_job

    specs = [
        workload_job(
            app,
            None,
            policy,
            seed=seed + offset,
            iteration_scale=iteration_scale,
        )
        for app, policy in cells
        for offset in range(seeds_per_cell)
    ]
    start = time.perf_counter()
    ExperimentEngine(jobs=1, cache=None).run(specs)
    scalar_elapsed = time.perf_counter() - start
    runs = []
    for jobs in jobs_list:
        engine = ExperimentEngine(jobs=jobs, cache=None, ensemble=True)
        start = time.perf_counter()
        engine.run(specs)
        elapsed = time.perf_counter() - start
        runs.append(
            {
                "jobs": jobs,
                "elapsed_s": round(elapsed, 2),
                "speedup_vs_scalar": (
                    round(scalar_elapsed / elapsed, 2) if elapsed > 0.0 else None
                ),
            }
        )
    return {
        "cells": ["/".join(cell) for cell in cells],
        "seeds_per_cell": seeds_per_cell,
        "members": len(specs),
        "iteration_scale": iteration_scale,
        "cpu_count": os.cpu_count(),
        "scalar_elapsed_s": round(scalar_elapsed, 2),
        "runs": runs,
    }


def check_grid_speedup(
    report: Dict[str, Any], min_speedup: float
) -> List[str]:
    """Gate the grid-planner section's jobs=1 speedup vs the scalar path.

    Returns one message when the report carries a grid section whose
    single-process ensemble run is slower than ``min_speedup`` x the
    scalar serial grid (empty list = pass).  Reports without a grid
    section pass vacuously — the gate guards the planner's win where it
    was measured, it does not force every bench mode to measure it.
    """
    if min_speedup <= 0.0:
        raise ValueError("min_speedup must be positive")
    grid = report.get("grid_speedup")
    if not grid:
        return []
    failures = []
    for run in grid["runs"]:
        if run["jobs"] != 1:
            continue
        speedup = run.get("speedup_vs_scalar")
        if speedup is not None and speedup < min_speedup:
            failures.append(
                f"grid speedup {speedup}x at jobs=1 is below the "
                f"{min_speedup}x floor (scalar {grid['scalar_elapsed_s']} s, "
                f"ensemble {run['elapsed_s']} s)"
            )
    return failures


def run_bench(
    quick: bool = False,
    ticks: Optional[int] = None,
    repeats: Optional[int] = None,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark the workload mix and build the ``BENCH_PR3`` report.

    Parameters
    ----------
    quick:
        CI smoke mode: fewer ticks and repeats (noisier, much faster).
    ticks:
        Measured ticks per run (overrides the mode default).
    repeats:
        Timed fresh runs per workload; the best one is reported.
    seed:
        Simulation seed (identical dynamics across repeats).
    progress:
        Optional sink for one line per finished workload.
    """
    if ticks is None:
        ticks = 3000 if quick else 20000
    if repeats is None:
        repeats = 2 if quick else 3
    if ticks <= 0:
        raise ValueError("ticks must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")

    workloads: Dict[str, Any] = {}
    speedups: List[float] = []
    for workload in WORKLOADS:
        best_rate = _best_rate(
            repeats,
            lambda w=workload: _measure_once(w.app, w.policy, ticks, seed),
        )
        timer = SectionTimer()
        _measure_once(workload.app, workload.policy, ticks, seed, timer=timer)
        phase_seconds = timer.totals()
        phase_ticks_per_s = {
            section: (timer.ticks / seconds if seconds > 0.0 else 0.0)
            for section, seconds in phase_seconds.items()
        }
        seed_rate = SEED_TICKS_PER_S.get(workload.key)
        speedup = best_rate / seed_rate if seed_rate else None
        if speedup is not None:
            speedups.append(speedup)
        workloads[workload.key] = {
            "app": workload.app,
            "policy": workload.policy,
            "measured_ticks": ticks,
            "ticks_per_s": round(best_rate, 1),
            "seed_ticks_per_s": seed_rate,
            "speedup_vs_seed": round(speedup, 2) if speedup is not None else None,
            "phase_seconds": {k: round(v, 4) for k, v in phase_seconds.items()},
            "phase_fractions": {k: round(v, 3) for k, v in timer.fractions().items()},
            "phase_ticks_per_s": {
                k: round(v, 1) for k, v in phase_ticks_per_s.items()
            },
        }
        if progress is not None:
            progress(
                f"{workload.key:<20} {best_rate:>9.0f} ticks/s"
                + (f"  ({speedup:.2f}x seed)" if speedup is not None else "")
            )

    geomean = None
    if speedups:
        product = 1.0
        for value in speedups:
            product *= value
        geomean = round(product ** (1.0 / len(speedups)), 2)
    return {
        "label": "BENCH_PR3",
        "mode": "quick" if quick else "full",
        "measured_ticks": ticks,
        "repeats": repeats,
        "seed": seed,
        "warmup_ticks": WARMUP_TICKS,
        "workloads": workloads,
        "geomean_speedup_vs_seed": geomean,
    }


def run_ensemble_bench(
    quick: bool = False,
    members: Optional[int] = None,
    ticks: Optional[int] = None,
    repeats: Optional[int] = None,
    scalar_ticks: Optional[int] = None,
    seed: int = 1,
    shard_jobs: Optional[Sequence[int]] = None,
    grids: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark the ensemble engine and build the ``BENCH_PR8`` report.

    For each workload in the shared mix, measures (a) the scalar tick
    loop — the honest serial baseline, one trajectory at a time — and
    (b) an ensemble of ``members`` copies of the workload at distinct
    seeds, both through :func:`_timed_ticks`.  The headline metric is
    ``traj_ticks_per_s`` = ensemble ticks/sec x members: aggregate
    simulated trajectory-ticks per wall-clock second.  A further
    instrumented ensemble run records the per-phase split (``manager``
    is the control plane; the rest the data plane), and a shard-scaling
    section times one complete agent-bound ensemble job at each entry
    of ``shard_jobs``.

    Parameters
    ----------
    quick:
        CI smoke mode: far fewer measured ticks and a single repeat.
        The member count is *not* reduced — ``traj_ticks_per_s`` scales
        with the ensemble width, so the regression gate only compares
        like with like.
    members:
        Ensemble width (default :data:`ENSEMBLE_MEMBERS`).
    ticks:
        Measured ensemble ticks per run (overrides the mode default).
    repeats:
        Timed fresh runs per workload; the best one is reported.
    scalar_ticks:
        Measured ticks per scalar-baseline run.
    seed:
        Base seed; member ``i`` runs at ``seed + i``.
    shard_jobs:
        ``--jobs`` settings timed by the shard-scaling section
        (default ``(1, 2, 4)``, quick ``(1, 2)``; empty disables it).
    grids:
        Also measure the grid planner end to end
        (:func:`measure_grid_speedup`) and label the report
        ``BENCH_PR9``: a seed-replicated experiment grid run scalar
        serial vs through an ``ensemble=True`` engine.
    progress:
        Optional sink for one line per finished workload.
    """
    if members is None:
        members = ENSEMBLE_MEMBERS
    if ticks is None:
        ticks = 300 if quick else 2000
    if repeats is None:
        repeats = 1 if quick else 2
    if scalar_ticks is None:
        scalar_ticks = 3000 if quick else 20000
    if shard_jobs is None:
        shard_jobs = (1, 2) if quick else (1, 2, 4)
    if members <= 0:
        raise ValueError("members must be positive")
    if ticks <= 0 or scalar_ticks <= 0:
        raise ValueError("ticks must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")

    workloads: Dict[str, Any] = {}
    speedups: List[float] = []
    for workload in WORKLOADS:
        scalar_rate = _best_rate(
            repeats,
            lambda w=workload: _measure_once(
                w.app, w.policy, scalar_ticks, seed
            ),
        )
        ensemble_rate = _best_rate(
            repeats,
            lambda w=workload: _measure_ensemble_once(
                w.app, w.policy, members, ticks, seed
            ),
        )
        timer = SectionTimer()
        _measure_ensemble_once(
            workload.app, workload.policy, members, ticks, seed, timer=timer
        )
        phase_seconds = timer.totals()
        traj_rate = ensemble_rate * members
        speedup = traj_rate / scalar_rate if scalar_rate > 0.0 else None
        if speedup is not None:
            speedups.append(speedup)
        workloads[workload.key] = {
            "app": workload.app,
            "policy": workload.policy,
            "members": members,
            "measured_ticks": ticks,
            "scalar_ticks": scalar_ticks,
            "scalar_ticks_per_s": round(scalar_rate, 1),
            "ensemble_ticks_per_s": round(ensemble_rate, 1),
            "traj_ticks_per_s": round(traj_rate, 1),
            "speedup_vs_serial": (
                round(speedup, 2) if speedup is not None else None
            ),
            "phase_seconds": {
                k: round(v, 4) for k, v in phase_seconds.items()
            },
            "phase_fractions": {
                k: round(v, 3) for k, v in timer.fractions().items()
            },
        }
        if progress is not None:
            progress(
                f"{workload.key:<20} {traj_rate:>11.0f} traj-ticks/s"
                + (
                    f"  ({speedup:.1f}x serial)"
                    if speedup is not None
                    else ""
                )
            )

    shard_scaling = None
    if shard_jobs:
        if progress is not None:
            progress(f"shard scaling (jobs {list(shard_jobs)}) ...")
        shard_scaling = measure_shard_scaling(
            "face_rec",
            "proposed",
            members=4 if quick else 8,
            seed=seed,
            jobs_list=tuple(shard_jobs),
            iteration_scale=0.1 if quick else 0.5,
        )

    grid_speedup = None
    if grids:
        if progress is not None:
            progress("grid planner (scalar vs ensemble-routed) ...")
        grid_speedup = measure_grid_speedup(
            GRID_CELLS,
            seeds_per_cell=12 if quick else 64,
            iteration_scale=0.05 if quick else 0.2,
            seed=seed,
            jobs_list=(1,) if quick else (1, 2),
        )

    geomean = None
    if speedups:
        product = 1.0
        for value in speedups:
            product *= value
        geomean = round(product ** (1.0 / len(speedups)), 2)
    return {
        "label": "BENCH_PR9" if grids else "BENCH_PR8",
        "mode": "quick" if quick else "full",
        "members": members,
        "measured_ticks": ticks,
        "scalar_ticks": scalar_ticks,
        "repeats": repeats,
        "seed": seed,
        "warmup_ticks": WARMUP_TICKS,
        "workloads": workloads,
        "geomean_speedup_vs_serial": geomean,
        "shard_scaling": shard_scaling,
        "grid_speedup": grid_speedup,
    }


def format_ensemble_report(report: Dict[str, Any]) -> str:
    """Human-readable table of an ensemble bench report."""
    lines = [
        f"ensemble benchmark ({report['mode']}, {report['members']} members, "
        f"{report['measured_ticks']} ticks x {report['repeats']} repeats)",
        f"{'workload':<20} {'traj-ticks/s':>13} {'serial':>10} {'speedup':>8}",
    ]
    for key, entry in report["workloads"].items():
        speedup = entry["speedup_vs_serial"]
        lines.append(
            f"{key:<20} {entry['traj_ticks_per_s']:>13.0f} "
            f"{entry['scalar_ticks_per_s']:>10.0f} "
            f"{(str(speedup) + 'x') if speedup is not None else '-':>8}"
        )
        fractions = entry.get("phase_fractions") or {}
        if fractions:
            split = ", ".join(
                f"{section} {fraction:.0%}"
                for section, fraction in fractions.items()
            )
            lines.append(f"{'':<20}   phase split: {split}")
    geomean = report.get("geomean_speedup_vs_serial")
    if geomean is not None:
        lines.append(f"geomean speedup vs serial: {geomean}x")
    scaling = report.get("shard_scaling")
    if scaling:
        lines.append(
            f"shard scaling ({scaling['app']}/{scaling['policy']}, "
            f"{scaling['members']} members, scale "
            f"{scaling['iteration_scale']:g}, {scaling['cpu_count']} cpu):"
        )
        for run in scaling["runs"]:
            speedup = run["speedup_vs_jobs1"]
            lines.append(
                f"  --jobs {run['jobs']:<2} {run['elapsed_s']:>8.2f} s"
                + (f"  ({speedup}x vs jobs 1)" if speedup is not None else "")
            )
    grid = report.get("grid_speedup")
    if grid:
        lines.append(
            f"grid planner ({', '.join(grid['cells'])} x "
            f"{grid['seeds_per_cell']} seeds = {grid['members']} cells, "
            f"scale {grid['iteration_scale']:g}, {grid['cpu_count']} cpu): "
            f"scalar serial {grid['scalar_elapsed_s']:.2f} s"
        )
        for run in grid["runs"]:
            speedup = run["speedup_vs_scalar"]
            lines.append(
                f"  --ensemble --jobs {run['jobs']:<2} "
                f"{run['elapsed_s']:>8.2f} s"
                + (f"  ({speedup}x vs scalar)" if speedup is not None else "")
            )
    return "\n".join(lines)


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable table of a bench report."""
    lines = [
        f"tick-loop benchmark ({report['mode']}, "
        f"{report['measured_ticks']} ticks x {report['repeats']} repeats)",
        f"{'workload':<20} {'ticks/s':>10} {'seed':>10} {'speedup':>8}",
    ]
    for key, entry in report["workloads"].items():
        seed_rate = entry["seed_ticks_per_s"]
        speedup = entry["speedup_vs_seed"]
        lines.append(
            f"{key:<20} {entry['ticks_per_s']:>10.0f} "
            f"{seed_rate if seed_rate is not None else float('nan'):>10.0f} "
            f"{(str(speedup) + 'x') if speedup is not None else '-':>8}"
        )
        fractions = entry["phase_fractions"]
        if fractions:
            split = ", ".join(
                f"{section} {fraction:.0%}" for section, fraction in fractions.items()
            )
            lines.append(f"{'':<20}   phase split: {split}")
    geomean = report.get("geomean_speedup_vs_seed")
    if geomean is not None:
        lines.append(f"geomean speedup vs seed: {geomean}x")
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a bench report as stable, diff-friendly JSON.

    Written atomically (temp file + fsync + rename) so an interrupted
    benchmark never leaves a truncated ``BENCH_*.json`` behind.
    """
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a previously written bench report."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


#: Throughput metrics the regression gate compares when both the fresh
#: report and the baseline carry them: the scalar tick rate and the
#: ensemble's aggregate trajectory-tick rate.
GATED_METRICS: Tuple[str, ...] = ("ticks_per_s", "traj_ticks_per_s")


def compare_reports(
    report: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Per-workload speedup deltas of a fresh report vs a baseline.

    One line per (workload, gated metric) present in both reports, with
    the fractional change (positive = faster than the baseline); plus a
    note for workloads only one side measured.  Pure reporting — the
    pass/fail decision stays in :func:`check_regression`, so ``repro
    bench --compare`` prints these lines and then gates on the same
    thresholds CI uses.
    """
    lines = []
    baseline_workloads = baseline.get("workloads", {})
    report_workloads = report.get("workloads", {})
    for key, entry in report_workloads.items():
        reference = baseline_workloads.get(key)
        if reference is None:
            lines.append(f"{key}: not in baseline (skipped)")
            continue
        for metric in GATED_METRICS:
            if metric not in entry or metric not in reference:
                continue
            old = reference[metric]
            new = entry[metric]
            delta = (new - old) / old if old else float("inf")
            lines.append(
                f"{key}: {metric} {new:.0f} vs {old:.0f} ({delta:+.1%})"
            )
    for key in baseline_workloads:
        if key not in report_workloads:
            lines.append(f"{key}: only in baseline (skipped)")
    return lines


def check_regression(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
) -> List[str]:
    """Compare a fresh report against a committed baseline.

    Returns one message per (workload, metric) pair whose throughput
    fell more than ``max_regression`` below the baseline's (empty list
    = pass).  Every metric in :data:`GATED_METRICS` present in *both*
    entries is gated, so the same function guards the scalar bench
    (``ticks_per_s``) and the ensemble bench (``traj_ticks_per_s``).
    Workloads or metrics missing from either report are skipped: the
    gate guards against slowdowns, not benchmark-set drift.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValueError("max_regression must be in [0, 1)")
    failures = []
    baseline_workloads = baseline.get("workloads", {})
    for key, entry in report.get("workloads", {}).items():
        reference = baseline_workloads.get(key)
        if reference is None:
            continue
        for metric in GATED_METRICS:
            if metric not in entry or metric not in reference:
                continue
            floor = reference[metric] * (1.0 - max_regression)
            if entry[metric] < floor:
                failures.append(
                    f"{key}: {metric} {entry[metric]:.0f} is below "
                    f"{floor:.0f} (baseline {reference[metric]:.0f} "
                    f"- {max_regression:.0%})"
                )
    return failures
