"""The ``repro bench`` harness: tick-loop throughput + phase accounting.

Runs the default quad-core workload mix (a barrier-heavy app and a
work-queue app under plain Linux behaviour, plus the learning agent) and
reports, per workload:

* **ticks/sec** — wall-clock throughput of ``Simulation.step`` with no
  instrumentation attached (best of N fresh runs, after a warmup);
* **speedup vs. seed** — against :data:`SEED_TICKS_PER_S`, the numbers
  measured on the seed (pre fast-path) implementation with this same
  harness shape (200-tick warmup, best-of-3, 20k measured ticks);
* **per-phase split** — a second, instrumented run with a
  :class:`~repro.perf.timer.SectionTimer` attached: seconds and
  ticks/sec for schedule/app/governor/power/thermal/sensors/manager.

The report is written to ``BENCH_PR3.json``; CI reruns ``repro bench
--quick`` and fails when throughput regresses more than 30% below the
committed numbers (see ``--check-against``).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.experiments.runner import _make_app, build_manager
from repro.ioutil import atomic_write_text
from repro.perf.timer import SectionTimer
from repro.soc.simulator import Simulation

#: Ticks stepped before the measured window (JIT-free Python still
#: benefits: allocator, branch history, warm caches).
WARMUP_TICKS = 200

#: Seed-implementation throughput (ticks/sec) measured with this harness
#: at commit c4d2d17 (pre fast-path): 200-tick warmup, 20000 measured
#: ticks, best of 3, default platform, seed 1.  The denominators of every
#: speedup this module reports.
SEED_TICKS_PER_S: Dict[str, float] = {
    "tachyon/linux": 12012.4,
    "mpeg_dec/linux": 9899.0,
    "face_rec/proposed": 11396.9,
}


class BenchWorkload(NamedTuple):
    """One benchmarked (application, policy) pair."""

    key: str
    app: str
    policy: str


#: The default quad-core workload mix: one barrier app and one
#: work-queue app under the Linux default path (scheduler + ondemand
#: dominate), plus the full learning agent (manager on the tick path).
WORKLOADS: Tuple[BenchWorkload, ...] = (
    BenchWorkload("tachyon/linux", "tachyon", "linux"),
    BenchWorkload("mpeg_dec/linux", "mpeg_dec", "linux"),
    BenchWorkload("face_rec/proposed", "face_rec", "proposed"),
)


def _build_simulation(app: str, policy: str, seed: int) -> Simulation:
    """A prepared simulation mirroring the experiment runner's wiring."""
    application = _make_app(app, None, seed=seed, scale=1.0)
    manager, governor, userspace_hz = build_manager(policy)
    sim = Simulation(
        [application],
        governor=governor,
        userspace_frequency_hz=userspace_hz,
        manager=manager,
        seed=seed,
        max_time_s=None,
    )
    sim.prepare()
    return sim


def _measure_once(
    app: str, policy: str, ticks: int, seed: int, timer: Optional[SectionTimer] = None
) -> Tuple[int, float]:
    """One fresh run: warm up, then step ``ticks`` times under the clock.

    Returns ``(ticks_stepped, elapsed_seconds)``; stops early if the
    application finishes (the tick counts below stay well inside every
    app's full length).
    """
    sim = _build_simulation(app, policy, seed)
    if timer is not None:
        sim.attach_timer(timer)
    for _ in range(WARMUP_TICKS):
        sim.step()
    stepped = 0
    start = time.perf_counter()
    while stepped < ticks:
        sim.step()
        stepped += 1
        if sim.current_app.done:
            break
    return stepped, time.perf_counter() - start


def run_bench(
    quick: bool = False,
    ticks: Optional[int] = None,
    repeats: Optional[int] = None,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark the workload mix and build the ``BENCH_PR3`` report.

    Parameters
    ----------
    quick:
        CI smoke mode: fewer ticks and repeats (noisier, much faster).
    ticks:
        Measured ticks per run (overrides the mode default).
    repeats:
        Timed fresh runs per workload; the best one is reported.
    seed:
        Simulation seed (identical dynamics across repeats).
    progress:
        Optional sink for one line per finished workload.
    """
    if ticks is None:
        ticks = 3000 if quick else 20000
    if repeats is None:
        repeats = 2 if quick else 3
    if ticks <= 0:
        raise ValueError("ticks must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")

    workloads: Dict[str, Any] = {}
    speedups: List[float] = []
    for workload in WORKLOADS:
        best_rate = 0.0
        for _ in range(repeats):
            stepped, elapsed = _measure_once(
                workload.app, workload.policy, ticks, seed
            )
            if elapsed > 0.0:
                best_rate = max(best_rate, stepped / elapsed)
        timer = SectionTimer()
        _measure_once(workload.app, workload.policy, ticks, seed, timer=timer)
        phase_seconds = timer.totals()
        phase_ticks_per_s = {
            section: (timer.ticks / seconds if seconds > 0.0 else 0.0)
            for section, seconds in phase_seconds.items()
        }
        seed_rate = SEED_TICKS_PER_S.get(workload.key)
        speedup = best_rate / seed_rate if seed_rate else None
        if speedup is not None:
            speedups.append(speedup)
        workloads[workload.key] = {
            "app": workload.app,
            "policy": workload.policy,
            "measured_ticks": ticks,
            "ticks_per_s": round(best_rate, 1),
            "seed_ticks_per_s": seed_rate,
            "speedup_vs_seed": round(speedup, 2) if speedup is not None else None,
            "phase_seconds": {k: round(v, 4) for k, v in phase_seconds.items()},
            "phase_fractions": {k: round(v, 3) for k, v in timer.fractions().items()},
            "phase_ticks_per_s": {
                k: round(v, 1) for k, v in phase_ticks_per_s.items()
            },
        }
        if progress is not None:
            progress(
                f"{workload.key:<20} {best_rate:>9.0f} ticks/s"
                + (f"  ({speedup:.2f}x seed)" if speedup is not None else "")
            )

    geomean = None
    if speedups:
        product = 1.0
        for value in speedups:
            product *= value
        geomean = round(product ** (1.0 / len(speedups)), 2)
    return {
        "label": "BENCH_PR3",
        "mode": "quick" if quick else "full",
        "measured_ticks": ticks,
        "repeats": repeats,
        "seed": seed,
        "warmup_ticks": WARMUP_TICKS,
        "workloads": workloads,
        "geomean_speedup_vs_seed": geomean,
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable table of a bench report."""
    lines = [
        f"tick-loop benchmark ({report['mode']}, "
        f"{report['measured_ticks']} ticks x {report['repeats']} repeats)",
        f"{'workload':<20} {'ticks/s':>10} {'seed':>10} {'speedup':>8}",
    ]
    for key, entry in report["workloads"].items():
        seed_rate = entry["seed_ticks_per_s"]
        speedup = entry["speedup_vs_seed"]
        lines.append(
            f"{key:<20} {entry['ticks_per_s']:>10.0f} "
            f"{seed_rate if seed_rate is not None else float('nan'):>10.0f} "
            f"{(str(speedup) + 'x') if speedup is not None else '-':>8}"
        )
        fractions = entry["phase_fractions"]
        if fractions:
            split = ", ".join(
                f"{section} {fraction:.0%}" for section, fraction in fractions.items()
            )
            lines.append(f"{'':<20}   phase split: {split}")
    geomean = report.get("geomean_speedup_vs_seed")
    if geomean is not None:
        lines.append(f"geomean speedup vs seed: {geomean}x")
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a bench report as stable, diff-friendly JSON.

    Written atomically (temp file + fsync + rename) so an interrupted
    benchmark never leaves a truncated ``BENCH_*.json`` behind.
    """
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a previously written bench report."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_regression(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
) -> List[str]:
    """Compare a fresh report against a committed baseline.

    Returns one message per workload whose ticks/sec fell more than
    ``max_regression`` below the baseline's (empty list = pass).
    Workloads missing from either report are skipped: the gate guards
    against slowdowns, not benchmark-set drift.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValueError("max_regression must be in [0, 1)")
    failures = []
    baseline_workloads = baseline.get("workloads", {})
    for key, entry in report.get("workloads", {}).items():
        reference = baseline_workloads.get(key)
        if reference is None:
            continue
        floor = reference["ticks_per_s"] * (1.0 - max_regression)
        if entry["ticks_per_s"] < floor:
            failures.append(
                f"{key}: {entry['ticks_per_s']:.0f} ticks/s is below "
                f"{floor:.0f} (baseline {reference['ticks_per_s']:.0f} "
                f"- {max_regression:.0%})"
            )
    return failures
