"""Factory for the five ALPBench stand-in applications.

Maps ``(application name, dataset label)`` to a fully populated
:class:`~repro.workloads.thread_model.WorkloadSpec` and
:class:`~repro.workloads.application.Application`.  The activity-level
defaults (low activity while blocked, 6 worker threads) are shared; the
per-application phase structure comes from
:mod:`repro.workloads.datasets`.
"""

from __future__ import annotations

from typing import Tuple

from repro.units import ghz
from repro.workloads.application import Application, PerformanceMetric
from repro.workloads.datasets import dataset_names_for, dataset_overlay
from repro.workloads.thread_model import WorkloadSpec

#: The applications of the ALPBench suite used in the paper.
APP_NAMES: Tuple[str, ...] = ("tachyon", "mpeg_dec", "mpeg_enc", "face_rec", "sphinx")

#: Applications whose performance metric is frames per second.
_FPS_APPS = frozenset({"mpeg_dec", "mpeg_enc"})

#: Activity factor while a thread is blocked at the barrier/sync.
_ACTIVITY_LOW = 0.05

#: Worker threads per application ("six threads are considered to exploit
#: the full benefit of the four cores", Section 6).
_NUM_THREADS = 6

#: Reference frequency used to derive the performance constraint ``Pc``.
_F_MAX = ghz(3.4)

#: Fraction of the best-case throughput the constraint demands.  The
#: paper accepts up to ~30% execution-time overhead for tachyon (Section
#: 6.5), i.e. the constraint sits well below the 3.4 GHz throughput.
_PC_FRACTION = 0.72


def _performance_constraint(
    work_cycles: float, sync_time_s: float, num_threads: int, num_cores: int = 4
) -> float:
    """Estimate ``Pc`` (iterations/s) from the spec's phase structure.

    The best-case iteration period is the compute burst of the
    worst-shared thread at maximum frequency plus the dependent section,
    plus a slack term for barrier staggering.
    """
    worst_share = num_cores / num_threads if num_threads > num_cores else 1.0
    compute_s = work_cycles / (_F_MAX * worst_share)
    period_s = compute_s + sync_time_s + 0.3
    return _PC_FRACTION / period_s


def workload_spec(app: str, dataset: str) -> WorkloadSpec:
    """Build the :class:`WorkloadSpec` for an application/dataset pair.

    Parameters
    ----------
    app:
        One of :data:`APP_NAMES`.
    dataset:
        A dataset label from :func:`repro.workloads.datasets.dataset_names_for`.
    """
    if app not in APP_NAMES:
        raise KeyError(f"unknown application {app!r}; known: {APP_NAMES}")
    overlay = dataset_overlay(app, dataset)
    return WorkloadSpec(
        name=app,
        dataset=overlay.label,
        num_threads=_NUM_THREADS,
        work_cycles=overlay.work_cycles,
        work_jitter_sigma=overlay.work_jitter_sigma,
        activity_high=overlay.activity_high,
        activity_low=_ACTIVITY_LOW,
        sync_time_s=overlay.sync_time_s,
        iterations=overlay.iterations,
        performance_constraint=_performance_constraint(
            overlay.work_cycles, overlay.sync_time_s, _NUM_THREADS
        ),
        barrier_sync=overlay.barrier_sync,
    )


def make_application(app: str, dataset: str | None = None, seed: int = 0) -> Application:
    """Instantiate a runnable :class:`Application`.

    Parameters
    ----------
    app:
        One of :data:`APP_NAMES`.
    dataset:
        Dataset label; defaults to the first (heaviest) dataset.
    seed:
        Seed of the per-iteration jitter RNG.
    """
    if dataset is None:
        dataset = dataset_names_for(app)[0]
    spec = workload_spec(app, dataset)
    metric = (
        PerformanceMetric.FRAMES_PER_SECOND
        if app in _FPS_APPS
        else PerformanceMetric.THROUGHPUT
    )
    return Application(spec, metric=metric, seed=seed)
