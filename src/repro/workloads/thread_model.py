"""Phase-structured thread model.

Each simulated thread executes ``iterations`` repetitions of:

1. **COMPUTE** — a burst of ``work_cycles`` CPU cycles (lognormal jitter
   per iteration per thread) executed at ``activity_high``; the burst's
   wall-clock length depends on the core's frequency and on how many
   runnable threads time-share that core.
2. **BARRIER** — wait (at ``activity_low``) until every sibling thread
   has finished the same iteration.
3. **SYNC** — the inter-thread dependent section (serial work / IO /
   rate control), a fixed wall-clock time at ``activity_low``, shared by
   all threads of the application.

This is the minimal structure that reproduces the paper's motivational
observation: the overlap pattern of compute bursts and dependent phases
across cores — which thread-to-core affinity controls — determines both
the average temperature and the thermal cycling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class ThreadPhase(enum.Enum):
    """Lifecycle phases of a simulated thread."""

    COMPUTE = "compute"
    BARRIER = "barrier"
    SYNC = "sync"
    DONE = "done"


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one application's thread behaviour.

    Attributes
    ----------
    name:
        Application name (e.g. ``"tachyon"``).
    dataset:
        Input-data label (e.g. ``"set 1"``).
    num_threads:
        Number of worker threads (6 in the paper).
    work_cycles:
        Mean CPU cycles of one compute burst.
    work_jitter_sigma:
        Sigma of the lognormal multiplicative jitter on ``work_cycles``.
    activity_high:
        Switching-activity factor during compute.
    activity_low:
        Activity while waiting at the barrier / in the sync section.
    sync_time_s:
        Wall-clock duration of the inter-thread dependent section.
    iterations:
        Number of compute/sync repetitions until the application is done.
    performance_constraint:
        Minimum acceptable throughput in iterations/second (``Pc`` in
        Eq. 8); applications measured in frames/second use iterations as
        frames.
    barrier_sync:
        True for applications whose threads synchronise on a barrier
        every iteration (the codecs' frame dependencies, face_rec's
        per-image fusion); False for data-parallel applications whose
        threads independently pull work from a queue (tachyon rendering
        independent images).
    """

    name: str
    dataset: str
    num_threads: int
    work_cycles: float
    work_jitter_sigma: float
    activity_high: float
    activity_low: float
    sync_time_s: float
    iterations: int
    performance_constraint: float
    barrier_sync: bool = True

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ValueError("need at least one thread")
        if not 0.0 <= self.activity_low <= self.activity_high <= 1.0:
            raise ValueError("activities must satisfy 0 <= low <= high <= 1")
        if self.work_cycles <= 0.0 or self.iterations <= 0:
            raise ValueError("work and iterations must be positive")


class SimThread:
    """Run-time state of one worker thread.

    Parameters
    ----------
    spec:
        The owning application's workload description.
    thread_id:
        Index of this thread within the application.
    rng:
        RNG shared by the application (drives the per-iteration jitter).
    """

    def __init__(self, spec: WorkloadSpec, thread_id: int, rng: np.random.Generator) -> None:
        self.spec = spec
        self.thread_id = thread_id
        self._rng = rng
        self.phase = ThreadPhase.COMPUTE
        self.iteration = 0
        self.remaining_cycles = self._draw_work()
        #: Core the thread last executed on (None before first placement).
        self.last_core: Optional[int] = None
        #: Core the thread currently occupies (set by the scheduler).
        self.core: Optional[int] = None

    def _draw_work(self) -> float:
        """Sample the cycle count of the next compute burst."""
        sigma = self.spec.work_jitter_sigma
        if sigma <= 0.0:
            return self.spec.work_cycles
        # Lognormal with mean ~ work_cycles.
        factor = self._rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma)
        return self.spec.work_cycles * factor

    # ------------------------------------------------------------------
    # Phase transitions (driven by the Application each tick)
    # ------------------------------------------------------------------

    @property
    def runnable(self) -> bool:
        """True when the thread wants CPU cycles this tick."""
        return self.phase is ThreadPhase.COMPUTE

    @property
    def done(self) -> bool:
        """True once all iterations completed."""
        return self.phase is ThreadPhase.DONE

    @property
    def activity(self) -> float:
        """Activity factor the thread imposes while on a core."""
        if self.phase is ThreadPhase.COMPUTE:
            return self.spec.activity_high
        if self.phase is ThreadPhase.DONE:
            return 0.0
        return self.spec.activity_low

    def execute(self, cycles: float) -> None:
        """Consume CPU cycles granted by the scheduler for this tick.

        Transitions to BARRIER once the burst's cycles are exhausted.
        """
        if self.phase is not ThreadPhase.COMPUTE:
            return
        self.remaining_cycles -= cycles
        if self.remaining_cycles <= 0.0:
            self.phase = ThreadPhase.BARRIER

    def release_barrier(self) -> None:
        """Called by the application when all siblings reached the barrier."""
        if self.phase is ThreadPhase.BARRIER:
            self.phase = ThreadPhase.SYNC

    def finish_sync(self) -> None:
        """Called when the dependent section ends: start the next burst."""
        if self.phase is not ThreadPhase.SYNC:
            return
        self.iteration += 1
        if self.iteration >= self.spec.iterations:
            self.phase = ThreadPhase.DONE
        else:
            self.phase = ThreadPhase.COMPUTE
            self.remaining_cycles = self._draw_work()

    def continue_from_queue(self, has_work: bool) -> None:
        """Work-queue variant of :meth:`finish_sync`.

        Data-parallel applications (``barrier_sync=False``) let their
        threads pull items from a shared pool instead of running a fixed
        per-thread iteration count; the application decides whether more
        work exists.  Without this, pinned mappings with unequal core
        shares would leave fast threads idle in a long drain tail that
        real work-queue applications do not exhibit.
        """
        if self.phase is not ThreadPhase.SYNC:
            return
        self.iteration += 1
        if has_work:
            self.phase = ThreadPhase.COMPUTE
            self.remaining_cycles = self._draw_work()
        else:
            self.phase = ThreadPhase.DONE
