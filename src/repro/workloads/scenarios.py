"""Inter-application scenarios of Figure 3.

A scenario ``appA-appB`` executes ``appA`` to completion, then ``appB``
(Section 6.2).  The six scenarios of the paper mix the three Table 2
applications; the three-application scenarios exhibit the most frequent
application switching and hence the largest benefit of the proposed
autonomous switch detection.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from repro.workloads.alpbench import make_application
from repro.workloads.application import Application

#: The six inter-application scenarios of Figure 3, in plot order.
INTER_APP_SCENARIOS: Tuple[Tuple[str, ...], ...] = (
    ("mpeg_dec", "tachyon"),
    ("tachyon", "mpeg_dec"),
    ("mpeg_enc", "tachyon"),
    ("mpeg_enc", "mpeg_dec"),
    ("mpeg_dec", "tachyon", "mpeg_enc"),
    ("tachyon", "mpeg_enc", "mpeg_dec"),
)


def scenario_name(apps: Tuple[str, ...]) -> str:
    """Scenario label in the paper's ``appA-appB`` style."""
    return "-".join(app.replace("_", "") for app in apps)


def scenario_applications(
    apps: Tuple[str, ...],
    seed: int = 0,
    iteration_scale: float = 1.0,
) -> List[Application]:
    """Instantiate the application sequence of a scenario.

    Each application uses its default (first) dataset, as in the paper's
    inter-application experiment.

    Parameters
    ----------
    apps:
        Application names in execution order.
    seed:
        Base RNG seed; each application gets a distinct derived seed.
    iteration_scale:
        Scale factor on each application's iteration count, used by the
        experiments to shorten inter-application runs while keeping
        several minutes of execution per application.
    """
    applications = []
    for index, app in enumerate(apps):
        application = make_application(app, seed=seed + 7 * index + 1)
        if iteration_scale != 1.0:
            spec = application.spec
            scaled = max(10, int(spec.iterations * iteration_scale))
            application = Application(
                replace(spec, iterations=scaled),
                metric=application.metric,
                seed=seed + 7 * index + 1,
            )
        applications.append(application)
    return applications
