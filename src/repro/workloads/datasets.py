"""Input datasets of the ALPBench stand-ins.

The paper evaluates each application on three inputs (tachyon's
``set 1..3``, mpeg_dec's ``clip 1..3``, mpeg_enc's ``seq 1..3``).  Here a
dataset is a small parameter overlay on the application's base workload
spec — how much work a burst carries, its activity and its dependent-
section length — which is exactly how different inputs change the thermal
behaviour of the real codecs (e.g. tachyon set 1 is the scene that
saturates all cores and reaches 69 degC under Linux).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import List, Mapping, Tuple


@dataclass(frozen=True)
class DatasetOverlay:
    """Multiplicative/absolute tweaks a dataset applies to a base spec."""

    #: Label used in tables (e.g. ``"set 1"``).
    label: str
    #: Mean compute-burst cycles.
    work_cycles: float
    #: Activity factor during compute.
    activity_high: float
    #: Dependent-section wall-clock length in seconds.
    sync_time_s: float
    #: Lognormal jitter sigma of the burst length.
    work_jitter_sigma: float
    #: Number of iterations (frames / images / utterances).
    iterations: int
    #: Whether threads synchronise on a barrier every iteration.
    barrier_sync: bool = True


#: Dataset tables per application.  The first dataset of each application
#: is the heaviest, mirroring the paper where set 1 / clip 1 / seq 1 show
#: the largest thermal effects.
_DATASETS: Mapping[str, Tuple[DatasetOverlay, ...]] = MappingProxyType({
    # tachyon renders independent images from a work queue: no barrier.
    "tachyon": (
        DatasetOverlay("set 1", 4.0e9, 0.68, 0.02, 0.05, 280, barrier_sync=False),
        DatasetOverlay("set 2", 2.6e9, 0.78, 1.60, 0.30, 200, barrier_sync=False),
        DatasetOverlay("set 3", 2.4e9, 0.75, 2.20, 0.30, 180, barrier_sync=False),
    ),
    "mpeg_dec": (
        DatasetOverlay("clip 1", 3.00e9, 0.85, 5.50, 0.15, 150),
        DatasetOverlay("clip 2", 2.80e9, 0.82, 5.20, 0.25, 150),
        DatasetOverlay("clip 3", 2.60e9, 0.80, 4.80, 0.20, 150),
    ),
    "mpeg_enc": (
        DatasetOverlay("seq 1", 3.40e9, 0.80, 6.40, 0.20, 170),
        DatasetOverlay("seq 2", 3.60e9, 0.82, 6.80, 0.25, 160),
        DatasetOverlay("seq 3", 3.20e9, 0.78, 6.00, 0.20, 170),
    ),
    # face_rec's threads stall on pairwise dependencies, not a global
    # barrier: staggered stalls that Linux's idle balancing absorbs.
    "face_rec": (
        DatasetOverlay("img 1", 6.00e9, 0.90, 2.20, 0.35, 150, barrier_sync=False),
        DatasetOverlay("img 2", 5.50e9, 0.88, 2.10, 0.35, 150, barrier_sync=False),
        DatasetOverlay("img 3", 5.00e9, 0.85, 2.00, 0.35, 150, barrier_sync=False),
    ),
    "sphinx": (
        DatasetOverlay("audio 1", 2.50e9, 0.82, 1.00, 0.30, 200),
        DatasetOverlay("audio 2", 2.20e9, 0.80, 0.90, 0.30, 200),
        DatasetOverlay("audio 3", 2.00e9, 0.78, 0.80, 0.30, 200),
    ),
})

#: All dataset labels keyed by application (read-only, like the tables
#: above: dataset lookups happen inside engine worker processes).
DATASET_NAMES: Mapping[str, Tuple[str, ...]] = MappingProxyType(
    {app: tuple(d.label for d in overlays) for app, overlays in sorted(_DATASETS.items())}
)


def dataset_names_for(app: str) -> List[str]:
    """Dataset labels available for an application."""
    if app not in _DATASETS:
        raise KeyError(f"unknown application {app!r}")
    return list(DATASET_NAMES[app])


def dataset_overlay(app: str, dataset: str) -> DatasetOverlay:
    """Look up the overlay for ``(app, dataset)``.

    Raises
    ------
    KeyError
        For an unknown application or dataset label.
    """
    if app not in _DATASETS:
        raise KeyError(f"unknown application {app!r}")
    for overlay in _DATASETS[app]:
        if overlay.label == dataset:
            return overlay
    raise KeyError(f"unknown dataset {dataset!r} for {app!r}")
