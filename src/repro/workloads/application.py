"""Multi-threaded application: barrier coordination and performance.

The :class:`Application` owns its :class:`~repro.workloads.thread_model.SimThread`
objects, advances the barrier/sync state machine every tick, and exposes
the performance metric the controllers consume — frames per second for
the video codecs, throughput (iterations/second, the reciprocal of
execution time per unit work) for the others, as described in Section 5
of the paper.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

import numpy as np

from repro.workloads.thread_model import SimThread, ThreadPhase, WorkloadSpec

#: Phase singletons compared by identity on the tick path (an attribute
#: read instead of a property call per thread).
_COMPUTE = ThreadPhase.COMPUTE
_BARRIER = ThreadPhase.BARRIER
_SYNC = ThreadPhase.SYNC
_DONE = ThreadPhase.DONE


class PerformanceMetric(enum.Enum):
    """How an application's performance is expressed."""

    FRAMES_PER_SECOND = "fps"
    THROUGHPUT = "throughput"


class Application:
    """Run-time state of one multi-threaded application.

    Parameters
    ----------
    spec:
        Workload description.
    metric:
        Performance-metric flavour (fps for the codecs).
    seed:
        Seed of the jitter RNG; fixed per run for reproducibility.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        metric: PerformanceMetric = PerformanceMetric.THROUGHPUT,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.metric = metric
        self._rng = np.random.default_rng(seed)
        self.threads: List[SimThread] = [
            SimThread(spec, tid, self._rng) for tid in range(spec.num_threads)
        ]
        self._sync_remaining_s: Optional[float] = None
        self._thread_sync_s: dict = {}
        self._thread_completions = 0
        self._completion_times_s: List[float] = []
        self._elapsed_s = 0.0
        # Work-queue pool for data-parallel applications: total work
        # items; the initial bursts of the threads consume the first
        # num_threads items.
        self._queue_remaining = (
            spec.iterations * spec.num_threads - spec.num_threads
            if not spec.barrier_sync
            else 0
        )

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Application name from the spec."""
        return self.spec.name

    @property
    def done(self) -> bool:
        """True once every thread finished all iterations."""
        for thread in self.threads:
            if thread.phase is not _DONE:
                return False
        return True

    @property
    def completed_iterations(self) -> int:
        """Number of barrier-to-barrier iterations completed so far."""
        return len(self._completion_times_s)

    @property
    def elapsed_s(self) -> float:
        """Simulated time since the application started."""
        return self._elapsed_s

    def tick(self, dt: float) -> None:
        """Advance the barrier/sync coordination by one tick.

        The scheduler must already have called
        :meth:`~repro.workloads.thread_model.SimThread.execute` on the
        running threads for this tick.
        """
        self._elapsed_s += dt
        if self.done:
            return

        if not self.spec.barrier_sync:
            self._tick_independent(dt)
            return

        if self._sync_remaining_s is not None:
            # The dependent section is in progress.
            self._sync_remaining_s -= dt
            if self._sync_remaining_s <= 0.0:
                self._sync_remaining_s = None
                for thread in self.threads:
                    thread.finish_sync()
            return

        active = []
        all_at_barrier = True
        for thread in self.threads:
            phase = thread.phase
            if phase is _DONE:
                continue
            active.append(thread)
            if phase is not _BARRIER:
                all_at_barrier = False
        if active and all_at_barrier:
            # Barrier reached by everyone: record the iteration and enter
            # the dependent section.
            self._completion_times_s.append(self._elapsed_s)
            for thread in active:
                thread.release_barrier()
            self._sync_remaining_s = self.spec.sync_time_s
            if self._sync_remaining_s <= 0.0:
                self._sync_remaining_s = None
                for thread in active:
                    thread.finish_sync()

    def _tick_independent(self, dt: float) -> None:
        """Per-thread progression for data-parallel applications.

        Each thread runs its own compute -> sync loop with no barrier;
        one application iteration is credited whenever the pool completes
        ``num_threads`` thread-iterations, so throughput stays comparable
        to the barrier-synced metric.
        """
        sync_s = self._thread_sync_s
        spec = self.spec
        for thread in self.threads:
            phase = thread.phase
            if phase is _DONE:
                sync_s.pop(thread.thread_id, None)
                continue
            if phase is _BARRIER:
                thread.release_barrier()
                sync_s[thread.thread_id] = spec.sync_time_s
                phase = _SYNC  # release_barrier: BARRIER -> SYNC
            if phase is _SYNC:
                remaining = sync_s.get(thread.thread_id, 0.0) - dt
                if remaining <= 0.0:
                    sync_s.pop(thread.thread_id, None)
                    has_work = self._queue_remaining > 0
                    if has_work:
                        self._queue_remaining -= 1
                    thread.continue_from_queue(has_work)
                    self._thread_completions += 1
                    if self._thread_completions % spec.num_threads == 0:
                        self._completion_times_s.append(self._elapsed_s)
                else:
                    sync_s[thread.thread_id] = remaining

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------

    def throughput(self, window_s: Optional[float] = None) -> float:
        """Iterations (frames) completed per second.

        Parameters
        ----------
        window_s:
            When given, only iterations completed within the trailing
            window count — this is the per-epoch performance ``P`` the
            reward function uses.  Otherwise the whole-run average.
        """
        if self._elapsed_s <= 0.0:
            return 0.0
        if window_s is None:
            return self.completed_iterations / self._elapsed_s
        window = min(window_s, self._elapsed_s)
        if window <= 0.0:
            return 0.0
        threshold = self._elapsed_s - window
        recent = sum(  # repro: noqa[FP001] reason=integer event count, no float reassociation possible
            1 for t in self._completion_times_s if t > threshold
        )
        return recent / window

    def performance_satisfied(self, window_s: Optional[float] = None) -> bool:
        """Whether the current throughput meets the constraint ``Pc``."""
        return self.throughput(window_s) >= self.spec.performance_constraint

    def progress_fraction(self) -> float:
        """Fraction of total iterations completed, in [0, 1]."""
        return min(1.0, self.completed_iterations / self.spec.iterations)

    def phase_census(self) -> Tuple[int, int, int, int]:
        """(compute, barrier, sync, done) thread counts — for tests/debug."""
        counts = {phase: 0 for phase in ThreadPhase}
        for thread in self.threads:
            counts[thread.phase] += 1
        return (
            counts[ThreadPhase.COMPUTE],
            counts[ThreadPhase.BARRIER],
            counts[ThreadPhase.SYNC],
            counts[ThreadPhase.DONE],
        )
