"""Synthetic multi-threaded multimedia workloads (ALPBench stand-ins).

The paper runs five ALPBench applications (tachyon, mpeg_dec, mpeg_enc,
face_rec, sphinx) with 6 threads each.  We cannot ship ALPBench, so each
application is modelled by the phase structure the paper itself uses to
explain its thermal behaviour (Section 3):

* a per-thread **compute phase** — thread-independent high-activity
  cycles whose length varies per thread (jitter) and with the core's
  frequency and time-sharing;
* an **inter-thread dependent phase** — a barrier plus a serial/IO
  section during which threads are idle-ish.

Long compute / short dependency (face_rec, tachyon) yields sustained heat;
short compute / long dependency (mpeg_enc, mpeg_dec) yields alternating
heat, i.e. thermal cycling — exactly the two regimes of Figure 1.
"""

from repro.workloads.application import Application, PerformanceMetric
from repro.workloads.alpbench import APP_NAMES, make_application, workload_spec
from repro.workloads.datasets import DATASET_NAMES, dataset_names_for
from repro.workloads.scenarios import INTER_APP_SCENARIOS, scenario_applications
from repro.workloads.thread_model import SimThread, ThreadPhase, WorkloadSpec

__all__ = [
    "APP_NAMES",
    "Application",
    "DATASET_NAMES",
    "INTER_APP_SCENARIOS",
    "PerformanceMetric",
    "SimThread",
    "ThreadPhase",
    "WorkloadSpec",
    "dataset_names_for",
    "make_application",
    "scenario_applications",
    "workload_spec",
]
