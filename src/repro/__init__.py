"""Reproduction of Das et al., "Reinforcement Learning-Based Inter- and
Intra-Application Thermal Optimization for Lifetime Improvement of
Multicore Systems" (DAC 2014).

Public API entry points:

* :mod:`repro.config` — platform / reliability / agent configuration;
* :mod:`repro.core` — the paper's Q-learning thermal manager;
* :mod:`repro.soc` — the simulated quad-core platform and engine;
* :mod:`repro.workloads` — the ALPBench stand-in applications;
* :mod:`repro.reliability` — MTTF models (rainflow, Coffin-Manson,
  Miner, Arrhenius aging);
* :mod:`repro.baselines` — Linux, static and Ge & Qiu policies;
* :mod:`repro.experiments` — one module per paper table/figure;
* ``python -m repro`` — command-line artefact regeneration.

See README.md for a quickstart and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"

from repro.config import (
    default_agent_config,
    default_platform_config,
    default_reliability_config,
)

__all__ = [
    "__version__",
    "default_agent_config",
    "default_platform_config",
    "default_reliability_config",
]
