"""Downing-Socie "simple rainflow" cycle counting (paper ref. [5]).

The paper extracts thermal cycles from a temperature profile using the
simple rainflow counting algorithm of Downing & Socie (1982).  We
implement the one-pass three-point variant standardised as ASTM E1049-85
"Rainflow Counting": the series is reduced to its reversal points, a stack
of candidate reversals is maintained, and whenever the most recent range
``X`` is at least as large as the previous range ``Y``, ``Y`` is counted —
as a full cycle when it is interior, or as a half cycle when it contains
the starting data point.  The residue left on the stack at the end of the
history is counted as half cycles.

Each counted cycle records the attributes Eq. 3 of the paper needs:

* ``amplitude_k`` — the full range ``deltaT`` of the cycle in kelvin,
* ``max_c`` — the maximum temperature touched by the cycle (``Tmax``),
* ``mean_c`` — the mean of the two endpoints,
* ``count`` — 1.0 for a full cycle, 0.5 for a half cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class ThermalCycle:
    """A single rainflow-counted thermal cycle.

    Attributes
    ----------
    amplitude_k:
        Peak-to-peak range of the cycle in kelvin (``deltaT_i`` in Eq. 3).
    mean_c:
        Mean temperature of the cycle endpoints in degrees Celsius.
    max_c:
        Maximum temperature of the cycle in degrees Celsius
        (``Tmax(i)`` in Eq. 3).
    count:
        1.0 for a full cycle, 0.5 for a half cycle (residue).
    """

    amplitude_k: float
    mean_c: float
    max_c: float
    count: float

    @property
    def min_c(self) -> float:
        """Minimum temperature of the cycle in degrees Celsius."""
        return self.max_c - self.amplitude_k


def extract_reversals(series: Sequence[float]) -> List[float]:
    """Reduce a temperature series to its sequence of reversal points.

    A reversal is a local maximum or minimum; consecutive equal samples
    are collapsed first so that plateaus do not produce spurious
    zero-range reversals.  The first and last samples are always kept
    (they bound the residue half-cycles).

    Parameters
    ----------
    series:
        Temperature samples in degrees Celsius.

    Returns
    -------
    list of float
        The reversal sequence; empty when fewer than two distinct
        samples exist.
    """
    # Collapse repeats.
    collapsed: List[float] = []
    for value in series:
        if not collapsed or value != collapsed[-1]:
            collapsed.append(float(value))
    if len(collapsed) < 2:
        return []

    reversals = [collapsed[0]]
    for index in range(1, len(collapsed) - 1):
        previous, current, following = (
            collapsed[index - 1],
            collapsed[index],
            collapsed[index + 1],
        )
        if (current - previous) * (following - current) < 0.0:
            reversals.append(current)
    reversals.append(collapsed[-1])
    return reversals


def _make_cycle(first: float, second: float, count: float) -> ThermalCycle:
    """Build a :class:`ThermalCycle` from two reversal endpoints."""
    high = max(first, second)
    low = min(first, second)
    return ThermalCycle(
        amplitude_k=high - low,
        mean_c=0.5 * (high + low),
        max_c=high,
        count=count,
    )


def count_cycles(series: Sequence[float]) -> List[ThermalCycle]:
    """Rainflow-count the thermal cycles of a temperature profile.

    Parameters
    ----------
    series:
        Temperature samples in degrees Celsius, in time order.

    Returns
    -------
    list of :class:`ThermalCycle`
        Counted cycles; full cycles carry ``count == 1.0`` and residue
        half-cycles ``count == 0.5``.  Zero-amplitude cycles are never
        produced.

    Notes
    -----
    The number of counted cycles (summing half cycles as 0.5) is bounded
    by half the number of reversals, a property the test-suite checks
    with hypothesis.
    """
    reversals = extract_reversals(series)
    cycles: List[ThermalCycle] = []
    stack: List[float] = []

    for point in reversals:
        stack.append(point)
        while len(stack) >= 3:
            x_range = abs(stack[-1] - stack[-2])
            y_range = abs(stack[-2] - stack[-3])
            if x_range < y_range:
                break
            if len(stack) == 3:
                # Y contains the starting point: count as a half cycle and
                # retire the starting point.
                if y_range > 0.0:
                    cycles.append(_make_cycle(stack[0], stack[1], 0.5))
                stack.pop(0)
            else:
                # Interior range: count Y as a full cycle and remove its
                # two endpoints from the stack.
                if y_range > 0.0:
                    cycles.append(_make_cycle(stack[-3], stack[-2], 1.0))
                del stack[-3:-1]

    # Residue: remaining ranges are half cycles.
    for index in range(len(stack) - 1):
        if stack[index] != stack[index + 1]:
            cycles.append(_make_cycle(stack[index], stack[index + 1], 0.5))
    return cycles


def total_cycle_count(cycles: Sequence[ThermalCycle]) -> float:
    """Total number of cycles, counting half cycles as 0.5."""
    return sum(cycle.count for cycle in cycles)


def max_amplitude(cycles: Sequence[ThermalCycle]) -> float:
    """Largest cycle amplitude in kelvin (0.0 for an empty list)."""
    return max((cycle.amplitude_k for cycle in cycles), default=0.0)
