"""Miner's rule for combining thermal cycles into an MTTF (Eqs. 4-5).

The effective number of cycles to failure under a mixed cycle population
is the (count-weighted) harmonic mean of the individual ``N_TC(i)``:

.. math::

    \\overline{N_{TC}} = \\frac{m}{\\sum_{i=1}^m 1 / N_{TC}(i)}

and the MTTF follows by scaling by the mean cycle period:

.. math::

    MTTF = \\overline{N_{TC}} \\; \\frac{\\sum_{i=1}^m t_i}{m}
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.config import ReliabilityConfig
from repro.reliability.coffin_manson import cycles_to_failure
from repro.reliability.rainflow import ThermalCycle


def effective_cycles_to_failure(
    cycles: Sequence[ThermalCycle], config: ReliabilityConfig
) -> float:
    """Effective cycles to failure ``N_TC`` of Eq. 5.

    Half cycles (``count == 0.5``) contribute half of their damage, as
    in the paper's rainflow treatment.

    Returns
    -------
    float
        The harmonic-mean cycles to failure; ``math.inf`` when no cycle
        causes plastic deformation (all-elastic profile).
    """
    total_count = sum(cycle.count for cycle in cycles)
    if total_count == 0.0:
        return math.inf
    damage = 0.0
    for cycle in cycles:
        n_tc = cycles_to_failure(cycle, config)
        if math.isfinite(n_tc):
            damage += cycle.count / n_tc
    if damage == 0.0:
        return math.inf
    return total_count / damage


def miner_mttf_seconds(
    cycles: Sequence[ThermalCycle],
    total_time_s: float,
    config: ReliabilityConfig,
) -> float:
    """Cycling MTTF of Eq. 4 in seconds.

    Parameters
    ----------
    cycles:
        Rainflow-counted cycles of the observed profile.
    total_time_s:
        Duration of the observed profile (``sum(t_i)``), in seconds.
    config:
        Device parameters.

    Returns
    -------
    float
        MTTF in seconds; ``math.inf`` for an all-elastic profile.
    """
    total_count = sum(cycle.count for cycle in cycles)
    if total_count == 0.0 or total_time_s <= 0.0:
        return math.inf
    n_tc = effective_cycles_to_failure(cycles, config)
    if math.isinf(n_tc):
        return math.inf
    mean_period = total_time_s / total_count
    return n_tc * mean_period
