"""Lifetime-reliability models of Section 4 of the paper.

This package implements the two wear-out channels the controller
optimises:

* **aging** (average-temperature driven wear-out such as electromigration
  and NBTI): Eq. 1 thermal aging, Eq. 2 MTTF under a Weibull lifetime
  distribution — see :mod:`repro.reliability.aging`;
* **thermal cycling** (fatigue): Downing-Socie rainflow counting
  (:mod:`repro.reliability.rainflow`), Coffin-Manson cycles-to-failure
  (Eq. 3, :mod:`repro.reliability.coffin_manson`), Miner's rule (Eqs. 4-5,
  :mod:`repro.reliability.miner`) and the thermal-stress summary of Eq. 6
  (:mod:`repro.reliability.stress`).

:mod:`repro.reliability.mttf` ties both together and calibrates the scale
parameters so that an unstressed (idle) core has an MTTF of 10 years, as
stated in the caption of Table 2.
"""

from repro.reliability.aging import aging_rate, thermal_aging
from repro.reliability.coffin_manson import cycles_to_failure
from repro.reliability.miner import effective_cycles_to_failure, miner_mttf_seconds
from repro.reliability.mttf import (
    MttfReport,
    aging_mttf_years,
    calibrate_atc,
    cycling_mttf_years,
    evaluate_profile,
    sofr_mttf_years,
)
from repro.reliability.rainflow import ThermalCycle, count_cycles, extract_reversals
from repro.reliability.stress import thermal_stress

__all__ = [
    "MttfReport",
    "ThermalCycle",
    "aging_mttf_years",
    "aging_rate",
    "calibrate_atc",
    "count_cycles",
    "cycles_to_failure",
    "cycling_mttf_years",
    "effective_cycles_to_failure",
    "evaluate_profile",
    "extract_reversals",
    "miner_mttf_seconds",
    "sofr_mttf_years",
    "thermal_aging",
    "thermal_stress",
]
