"""Thermal stress of a core due to thermal cycling (Eq. 6 of the paper).

The stress experienced by a core is

.. math::

    \\text{Stress} = \\sum_{i=1}^{m} (\\delta T_i - T_{Th})^b
                     \\; e^{-E_a / (K\\, T_{max}(i))}

summed over the rainflow-counted cycles of the thermal profile.  Cycles
whose amplitude does not exceed the elastic threshold ``T_Th`` cause no
plastic deformation and contribute nothing.  Maximising the cycling MTTF
is equivalent to minimising this quantity (Section 4.2).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.config import ReliabilityConfig
from repro.reliability.rainflow import ThermalCycle, count_cycles
from repro.units import BOLTZMANN_EV, celsius_to_kelvin


def cycle_stress(cycle: ThermalCycle, config: ReliabilityConfig) -> float:
    """Stress contribution of a single rainflow cycle.

    Parameters
    ----------
    cycle:
        A rainflow-counted thermal cycle.
    config:
        Device parameters (Coffin-Manson exponent ``b``, elastic
        threshold ``T_Th`` and activation energy ``E_a``).

    Returns
    -------
    float
        The (count-weighted) stress of the cycle; 0.0 for elastic cycles.
    """
    effective_amplitude = cycle.amplitude_k - config.elastic_threshold_k
    if effective_amplitude <= 0.0:
        return 0.0
    t_max_k = celsius_to_kelvin(cycle.max_c)
    arrhenius = math.exp(
        -config.cycling_activation_energy_ev / (BOLTZMANN_EV * t_max_k)
    )
    return cycle.count * effective_amplitude**config.coffin_manson_exponent * arrhenius


def thermal_stress(
    cycles_or_series: Sequence, config: ReliabilityConfig
) -> float:
    """Total thermal stress (Eq. 6) of a profile or of counted cycles.

    Parameters
    ----------
    cycles_or_series:
        Either a sequence of :class:`ThermalCycle` (already rainflow
        counted) or a raw temperature series in degrees Celsius, which is
        counted first.
    config:
        Device parameters.

    Returns
    -------
    float
        The total stress; larger means more fatigue damage per unit time
        once divided by the profile duration.
    """
    if cycles_or_series and isinstance(cycles_or_series[0], ThermalCycle):
        cycles = cycles_or_series
    else:
        cycles = count_cycles(cycles_or_series)
    return sum(cycle_stress(cycle, config) for cycle in cycles)
