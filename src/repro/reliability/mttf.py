"""MTTF evaluation and calibration (Eqs. 2, 4 and the Table 2 anchor).

Two wear-out channels are evaluated on every core's thermal profile:

* **aging MTTF** — Eq. 2 integrated for the Weibull lifetime
  ``R(t) = exp(-(t A)^beta)`` gives ``MTTF = Gamma(1 + 1/beta) / A``.
  With the Arrhenius aging rate of :mod:`repro.reliability.aging` and the
  calibration anchor below this collapses to
  ``baseline_mttf_years / mean_aging_rate``;
* **cycling MTTF** — Eqs. 3-5 collapse to
  ``MTTF = A_TC * sum(t_i) / Stress`` (the paper derives exactly this),
  combined with the baseline wear-out channel as a sum-of-failure-rates
  so an idle (all-elastic) profile reports the baseline 10 years.

The caption of Table 2 states that the scaling parameters are selected so
an unstressed (idle) core has an MTTF of 10 years; both channels here are
calibrated to that anchor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import ReliabilityConfig
from repro.reliability.aging import mean_aging_rate
from repro.reliability.rainflow import ThermalCycle, count_cycles
from repro.reliability.stress import thermal_stress
from repro.units import BOLTZMANN_EV, celsius_to_kelvin, seconds_to_years, years_to_seconds


@dataclass(frozen=True)
class MttfReport:
    """Reliability summary of one core's thermal profile.

    Mirrors the columns of Table 2 of the paper.
    """

    #: Time-average temperature over the profile (degC).
    average_temp_c: float
    #: Peak temperature over the profile (degC).
    peak_temp_c: float
    #: Total thermal stress (Eq. 6) of the profile.
    stress: float
    #: Time-averaged aging rate relative to an idle core.
    mean_aging_rate: float
    #: Number of rainflow cycles counted (half cycles as 0.5).
    num_cycles: float
    #: MTTF due to average temperature / aging, in years.
    aging_mttf_years: float
    #: MTTF due to thermal cycling, in years.
    cycling_mttf_years: float

    @property
    def combined_mttf_years(self) -> float:
        """Sum-of-failure-rates combination of both channels, in years."""
        return sofr_mttf_years(self.aging_mttf_years, self.cycling_mttf_years)


def calibrate_atc(config: ReliabilityConfig) -> float:
    """Coffin-Manson scale ``A_TC`` from the documented reference profile.

    The reference is a core cycling with 10 K amplitude around 50 degC
    (i.e. 45 <-> 55 degC) with a 20 s period; ``A_TC`` is chosen so that
    profile's raw cycling MTTF equals
    ``config.cycling_reference_mttf_years``.

    Returns
    -------
    float
        ``A_TC`` such that ``MTTF = A_TC * duration / stress``.
    """
    amplitude_k = 10.0
    t_max_c = 55.0
    period_s = 20.0
    effective = amplitude_k - config.elastic_threshold_k
    if effective <= 0.0:
        raise ValueError("elastic threshold exceeds the calibration amplitude")
    arrhenius = math.exp(
        -config.cycling_activation_energy_ev
        / (BOLTZMANN_EV * celsius_to_kelvin(t_max_c))
    )
    stress_per_cycle = effective**config.coffin_manson_exponent * arrhenius
    stress_rate = stress_per_cycle / period_s
    target_s = years_to_seconds(config.cycling_reference_mttf_years)
    return target_s * stress_rate


def resolved_atc(config: ReliabilityConfig) -> float:
    """The configured ``A_TC``, auto-calibrating when it is ``None``."""
    if config.cycling_scale_atc is not None:
        return config.cycling_scale_atc
    return calibrate_atc(config)


def aging_mttf_years(series_c: Sequence[float], config: ReliabilityConfig) -> float:
    """Aging (average-temperature) MTTF of a profile, in years.

    An idle profile pinned at the reference temperature yields exactly
    ``config.baseline_mttf_years``; hotter profiles decay exponentially
    per the Arrhenius aging rate.
    """
    rate = mean_aging_rate(series_c, config)
    return config.baseline_mttf_years / rate


def cycling_mttf_years(
    series_c: Sequence[float],
    duration_s: float,
    config: ReliabilityConfig,
    cycles: Optional[Sequence[ThermalCycle]] = None,
) -> float:
    """Thermal-cycling MTTF of a profile, in years.

    Combines the raw Coffin-Manson/Miner MTTF with the baseline wear-out
    channel (sum of failure rates), so the result is bounded above by
    ``config.baseline_mttf_years`` and equals it for an all-elastic
    profile.

    Parameters
    ----------
    series_c:
        Temperature samples in degrees Celsius.
    duration_s:
        Observation time represented by the samples.
    config:
        Device parameters.
    cycles:
        Optionally pre-counted rainflow cycles, to avoid recounting.
    """
    if cycles is None:
        cycles = count_cycles(series_c)
    stress = thermal_stress(list(cycles), config)
    baseline_s = years_to_seconds(config.baseline_mttf_years)
    if stress <= 0.0 or duration_s <= 0.0:
        return config.baseline_mttf_years
    raw_mttf_s = resolved_atc(config) * duration_s / stress
    combined_s = 1.0 / (1.0 / raw_mttf_s + 1.0 / baseline_s)
    return seconds_to_years(combined_s)


def sofr_mttf_years(*mttfs_years: float) -> float:
    """Combine per-channel MTTFs under the sum-of-failure-rates model."""
    rate = 0.0
    for mttf in mttfs_years:
        if mttf <= 0.0:
            return 0.0
        if math.isfinite(mttf):
            rate += 1.0 / mttf
    if rate == 0.0:
        return math.inf
    return 1.0 / rate


def evaluate_profile(
    series_c: Sequence[float],
    sample_period_s: float,
    config: ReliabilityConfig,
) -> MttfReport:
    """Full reliability report for one core's temperature profile.

    Parameters
    ----------
    series_c:
        Uniformly spaced temperature samples in degrees Celsius.
    sample_period_s:
        Spacing of the samples in seconds.
    config:
        Device parameters.
    """
    samples = list(series_c)
    if not samples:
        return MttfReport(
            average_temp_c=config.reference_temp_c,
            peak_temp_c=config.reference_temp_c,
            stress=0.0,
            mean_aging_rate=1.0,
            num_cycles=0.0,
            aging_mttf_years=config.baseline_mttf_years,
            cycling_mttf_years=config.baseline_mttf_years,
        )
    duration_s = len(samples) * sample_period_s
    cycles = count_cycles(samples)
    stress = thermal_stress(cycles, config)
    rate = mean_aging_rate(samples, config)
    return MttfReport(
        average_temp_c=sum(samples) / len(samples),
        peak_temp_c=max(samples),
        stress=stress,
        mean_aging_rate=rate,
        num_cycles=sum(c.count for c in cycles),
        aging_mttf_years=config.baseline_mttf_years / rate,
        cycling_mttf_years=cycling_mttf_years(samples, duration_s, config, cycles),
    )
