"""Coffin-Manson cycles-to-failure model (Eq. 3 of the paper).

For the ``i``-th rainflow-counted thermal cycle the number of identical
cycles a core would survive is

.. math::

    N_{TC}(i) = A_{TC} \\, (\\delta T_i - T_{Th})^{-b}
                \\; e^{E_a / (K\\, T_{max}(i))}

with empirical scale ``A_TC``, amplitude ``deltaT_i``, elastic threshold
``T_Th``, Coffin-Manson exponent ``b``, activation energy ``E_a`` and the
cycle's maximum temperature ``T_max(i)`` in kelvin.  ``N_TC`` is the
reciprocal of the per-cycle stress of Eq. 6 scaled by ``A_TC``, which is
why the paper collapses Eqs. 3-5 into ``MTTF = A_TC * sum(t_i) / Stress``.
"""

from __future__ import annotations

import math

from repro.config import ReliabilityConfig
from repro.reliability.rainflow import ThermalCycle
from repro.units import BOLTZMANN_EV, celsius_to_kelvin


def cycles_to_failure(cycle: ThermalCycle, config: ReliabilityConfig) -> float:
    """Number of cycles to failure for one thermal cycle (Eq. 3).

    Parameters
    ----------
    cycle:
        A rainflow-counted cycle.
    config:
        Device parameters; ``config.cycling_scale_atc`` is ``A_TC``.

    Returns
    -------
    float
        ``N_TC(i)``; ``math.inf`` for cycles inside the elastic region
        (they never cause fatigue failure).
    """
    # Imported lazily: mttf hosts the ATC auto-calibration and does not
    # import this module, so there is no cycle — but keeping the import
    # local also keeps the package import order trivial.
    from repro.reliability.mttf import resolved_atc

    effective_amplitude = cycle.amplitude_k - config.elastic_threshold_k
    if effective_amplitude <= 0.0:
        return math.inf
    t_max_k = celsius_to_kelvin(cycle.max_c)
    arrhenius = math.exp(
        config.cycling_activation_energy_ev / (BOLTZMANN_EV * t_max_k)
    )
    return (
        resolved_atc(config)
        * effective_amplitude ** (-config.coffin_manson_exponent)
        * arrhenius
    )
