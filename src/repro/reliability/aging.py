"""Thermal aging of a core (Eq. 1 of the paper).

The lifetime reliability of a core is ``R(t) = exp(-(t * A)^beta)`` with
the thermal aging

.. math::

    A = \\sum_i \\frac{\\Delta t_i}{t_p \\, \\alpha(T_i)}

where ``alpha(T)`` is the temperature-dependent fault-density scale (a
Weibull characteristic life) and ``T_i`` the average temperature in
interval ``Delta t_i``.  We model ``alpha(T)`` with the Arrhenius form
used by the wear-out models the paper cites (electromigration / NBTI,
Srinivasan et al. [15]):

.. math::

    \\alpha(T) = \\alpha_{ref} \\, e^{-\\frac{E_a}{K}
                 \\left(\\frac{1}{T_{ref}} - \\frac{1}{T}\\right)}

so that the *aging rate* ``r(T) = alpha_ref / alpha(T)`` equals 1 at the
reference (idle) temperature and grows exponentially with temperature.
The calibration anchor ``alpha_ref`` is chosen in
:mod:`repro.reliability.mttf` so an idle core has a 10-year MTTF.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.config import ReliabilityConfig
from repro.units import BOLTZMANN_EV, celsius_to_kelvin


def aging_rate(temp_c: float, config: ReliabilityConfig) -> float:
    """Relative aging rate ``r(T)`` at a temperature.

    ``r`` is 1.0 at ``config.reference_temp_c`` and grows with the
    Arrhenius law; e.g. with the default 0.7 eV activation energy the
    rate roughly doubles every 8-10 K.

    Parameters
    ----------
    temp_c:
        Core temperature in degrees Celsius.
    config:
        Device parameters (activation energy, reference temperature).
    """
    t_ref_k = celsius_to_kelvin(config.reference_temp_c)
    t_k = celsius_to_kelvin(temp_c)
    exponent = (config.aging_activation_energy_ev / BOLTZMANN_EV) * (
        1.0 / t_ref_k - 1.0 / t_k
    )
    return math.exp(exponent)


def mean_aging_rate(series_c: Sequence[float], config: ReliabilityConfig) -> float:
    """Time-averaged aging rate of a temperature profile.

    Equivalent to evaluating Eq. 1 with uniform ``Delta t_i`` and
    normalising by the calibration anchor; the exponential weighting
    means hot excursions dominate, exactly as in the paper's model.

    Returns
    -------
    float
        The mean of ``r(T_i)`` over the samples; 1.0 for a profile pinned
        at the reference temperature.  Returns 1.0 for an empty profile
        (an unobserved core ages at the idle rate).
    """
    if not len(series_c):
        return 1.0
    return sum(aging_rate(t, config) for t in series_c) / len(series_c)


def thermal_aging(
    series_c: Sequence[float],
    config: ReliabilityConfig,
    alpha_ref_seconds: float,
) -> float:
    """Thermal aging ``A`` of Eq. 1 for a uniformly sampled profile.

    Parameters
    ----------
    series_c:
        Temperature samples in degrees Celsius (uniform spacing).
    config:
        Device parameters.
    alpha_ref_seconds:
        Characteristic life (seconds) at the reference temperature; the
        calibration anchor computed by :mod:`repro.reliability.mttf`.

    Returns
    -------
    float
        ``A`` in 1/seconds; the MTTF follows from Eq. 2.
    """
    return mean_aging_rate(series_c, config) / alpha_ref_seconds
